package multi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppcsim/internal/disk"
	"ppcsim/internal/layout"
	"ppcsim/internal/trace"
)

// fixedModel serves every request in a constant time.
type fixedModel struct{ ms float64 }

func (m fixedModel) Service(int64, float64) float64 { return m.ms }
func (m fixedModel) Reset()                         {}

func fixed(ms float64) func() disk.Model {
	return func() disk.Model { return fixedModel{ms} }
}

// loopTrace builds passes sequential passes over n blocks.
func loopTrace(name string, n, passes int, computeMs float64) *trace.Trace {
	tr := &trace.Trace{
		Name:        name,
		Files:       []layout.File{{First: 0, Blocks: n}},
		CacheBlocks: n,
	}
	for p := 0; p < passes; p++ {
		for i := 0; i < n; i++ {
			tr.Refs = append(tr.Refs, trace.Ref{Block: layout.BlockID(i), ComputeMs: computeMs})
		}
	}
	return tr
}

// randTrace builds a uniform random trace.
func randTrace(name string, nBlocks, n int, computeMs float64, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{
		Name:        name,
		Files:       []layout.File{{First: 0, Blocks: nBlocks}},
		CacheBlocks: nBlocks,
	}
	for i := 0; i < n; i++ {
		tr.Refs = append(tr.Refs, trace.Ref{Block: layout.BlockID(rng.Intn(nBlocks)), ComputeMs: computeMs})
	}
	return tr
}

func TestConfigValidation(t *testing.T) {
	tr := loopTrace("a", 10, 1, 1)
	cases := []Config{
		{Disks: 1, CacheBlocks: 10},
		{Processes: []ProcessSpec{{Trace: tr}}, Disks: 0, CacheBlocks: 10},
		{Processes: []ProcessSpec{{Trace: tr}}, Disks: 1, CacheBlocks: 1},
		{Processes: []ProcessSpec{{Trace: nil}}, Disks: 1, CacheBlocks: 10},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Writes are not supported in multi-process runs.
	w := loopTrace("w", 4, 1, 1)
	w.Refs[0].Write = true
	if _, err := Run(Config{Processes: []ProcessSpec{{Trace: w}}, Disks: 1, CacheBlocks: 8}); err == nil {
		t.Error("write refs should be rejected")
	}
}

func TestSingleProcessSanity(t *testing.T) {
	tr := loopTrace("solo", 50, 4, 1)
	res, err := Run(Config{
		Processes:   []ProcessSpec{{Trace: tr, Algorithm: FixedHorizon, Hinted: true}},
		Disks:       2,
		CacheBlocks: 64,
		Model:       fixed(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Processes) != 1 {
		t.Fatalf("got %d process results", len(res.Processes))
	}
	p := res.Processes[0]
	if p.CacheHits+p.CacheMisses != 200 {
		t.Errorf("served %d refs, want 200", p.CacheHits+p.CacheMisses)
	}
	if p.Fetches != 50 {
		t.Errorf("fetches = %d, want 50 (everything fits)", p.Fetches)
	}
	if p.ElapsedSec < p.ComputeSec {
		t.Errorf("elapsed %g < compute %g", p.ElapsedSec, p.ComputeSec)
	}
	if res.ElapsedSec != p.ElapsedSec {
		t.Errorf("run elapsed %g != process elapsed %g", res.ElapsedSec, p.ElapsedSec)
	}
}

func TestTwoProcessesShareTheArray(t *testing.T) {
	a := loopTrace("a", 80, 3, 1)
	b := loopTrace("b", 80, 3, 1)
	res, err := Run(Config{
		Processes: []ProcessSpec{
			{Trace: a, Algorithm: FixedHorizon, Hinted: true},
			{Trace: b, Algorithm: FixedHorizon, Hinted: true},
		},
		Disks:       2,
		CacheBlocks: 200,
		Model:       fixed(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Processes {
		if p.CacheHits+p.CacheMisses != 240 {
			t.Errorf("%s: served %d refs, want 240", p.Name, p.CacheHits+p.CacheMisses)
		}
		if p.Fetches < 80 {
			t.Errorf("%s: fetches %d below distinct count", p.Name, p.Fetches)
		}
	}
	// Solo run of the same trace must be at least as fast as the shared
	// run (competition cannot help).
	solo, err := Run(Config{
		Processes:   []ProcessSpec{{Trace: a, Algorithm: FixedHorizon, Hinted: true}},
		Disks:       2,
		CacheBlocks: 200,
		Model:       fixed(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processes[0].ElapsedSec < solo.Processes[0].ElapsedSec-1e-9 {
		t.Errorf("sharing made process a faster: %g vs solo %g",
			res.Processes[0].ElapsedSec, solo.Processes[0].ElapsedSec)
	}
}

// TestPaperPredictionAggressiveHurtsNeighbors pins the paper's section-6
// prediction: a co-running non-hinting process suffers more next to an
// aggressively prefetching process than next to a fixed-horizon one.
func TestPaperPredictionAggressiveHurtsNeighbors(t *testing.T) {
	victim := func() *trace.Trace { return randTrace("victim", 300, 1500, 2, 5) }
	hog := func() *trace.Trace { return loopTrace("hog", 400, 8, 0.5) }
	run := func(alg Algorithm) ProcessResult {
		res, err := Run(Config{
			Processes: []ProcessSpec{
				{Trace: hog(), Algorithm: alg, Hinted: true},
				{Trace: victim(), Hinted: false},
			},
			Disks:       1,
			CacheBlocks: 450,
			Model:       fixed(6),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Processes[1]
	}
	nextToFH := run(FixedHorizon)
	nextToAgg := run(Aggressive)
	if nextToAgg.ElapsedSec <= nextToFH.ElapsedSec {
		t.Errorf("paper prediction failed: victim next to aggressive (%.3fs) should be slower than next to fixed horizon (%.3fs)",
			nextToAgg.ElapsedSec, nextToFH.ElapsedSec)
	}
}

func TestForestallInMulti(t *testing.T) {
	tr := loopTrace("fo", 200, 5, 1)
	res, err := Run(Config{
		Processes:   []ProcessSpec{{Trace: tr, Algorithm: Forestall, Hinted: true}},
		Disks:       2,
		CacheBlocks: 128,
		Model:       fixed(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Processes[0]
	if p.CacheHits+p.CacheMisses != 1000 {
		t.Fatalf("served %d refs, want 1000", p.CacheHits+p.CacheMisses)
	}
	// Forestall should be competitive with the better of FH/aggressive.
	best := 1e18
	for _, alg := range []Algorithm{FixedHorizon, Aggressive} {
		r, err := Run(Config{
			Processes:   []ProcessSpec{{Trace: tr, Algorithm: alg, Hinted: true}},
			Disks:       2,
			CacheBlocks: 128,
			Model:       fixed(5),
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Processes[0].ElapsedSec < best {
			best = r.Processes[0].ElapsedSec
		}
	}
	if p.ElapsedSec > best*1.15 {
		t.Errorf("multi forestall %.3fs vs best %.3fs", p.ElapsedSec, best)
	}
}

func TestUnhintedUsesLRUValuation(t *testing.T) {
	// An unhinted process with a small loop should keep its working set
	// resident (LRU works for loops that fit).
	tr := loopTrace("small", 20, 10, 1)
	res, err := Run(Config{
		Processes:   []ProcessSpec{{Trace: tr, Hinted: false}},
		Disks:       1,
		CacheBlocks: 64,
		Model:       fixed(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processes[0].Fetches != 20 {
		t.Errorf("fetches = %d, want 20 (loop fits in cache)", res.Processes[0].Fetches)
	}
}

func TestManyProcessesRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nProcs := 1 + rng.Intn(4)
		var specs []ProcessSpec
		total := 0
		for i := 0; i < nProcs; i++ {
			n := 20 + rng.Intn(120)
			blocks := 5 + rng.Intn(40)
			tr := randTrace("r", blocks, n, rng.Float64()*3, rng.Int63())
			total += n
			spec := ProcessSpec{Trace: tr, Hinted: rng.Intn(2) == 0}
			if spec.Hinted {
				if rng.Intn(2) == 0 {
					spec.Algorithm = FixedHorizon
				} else {
					spec.Algorithm = Aggressive
				}
			}
			specs = append(specs, spec)
		}
		res, err := Run(Config{
			Processes:   specs,
			Disks:       1 + rng.Intn(4),
			CacheBlocks: 8 + rng.Intn(64),
			Model:       fixed(1 + rng.Float64()*8),
		})
		if err != nil {
			t.Log(err)
			return false
		}
		served := int64(0)
		for _, p := range res.Processes {
			served += p.CacheHits + p.CacheMisses
			if p.StallTimeSec < 0 || p.ElapsedSec < p.ComputeSec-1e-9 {
				t.Logf("%s: bad decomposition %+v", p.Name, p)
				return false
			}
		}
		return served == int64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHintedPrefetchingBeatsUnhinted(t *testing.T) {
	tr := loopTrace("big", 300, 4, 1)
	hinted, err := Run(Config{
		Processes:   []ProcessSpec{{Trace: tr, Algorithm: FixedHorizon, Hinted: true}},
		Disks:       2,
		CacheBlocks: 128,
		Model:       fixed(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	unhinted, err := Run(Config{
		Processes:   []ProcessSpec{{Trace: tr, Hinted: false}},
		Disks:       2,
		CacheBlocks: 128,
		Model:       fixed(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if hinted.Processes[0].ElapsedSec >= unhinted.Processes[0].ElapsedSec {
		t.Errorf("hinted prefetching (%.3fs) should beat unhinted demand (%.3fs)",
			hinted.Processes[0].ElapsedSec, unhinted.Processes[0].ElapsedSec)
	}
}
