// Package revagg implements the reverse aggressive algorithm of
// Kimbrel and Karlin, as evaluated by the paper (sections 2.5 and 2.7).
//
// Reverse aggressive is offline: assuming a fixed ratio F between disk
// fetch time and inter-reference compute time, it first constructs a
// prefetching schedule for the *reversed* request sequence — whenever a
// disk is free, take the block B not needed for the longest time residing
// on that disk and, if B's next request is after the first missing block
// M, "fetch" M replacing B (the operation occupies B's disk, because in
// the forward direction it is a real fetch of B). The reverse schedule is
// then transformed into forward fetch/eviction pairs: a reverse eviction
// of B becomes a forward fetch of B, and a reverse fetch of M becomes a
// forward eviction of M with a release time (one past M's last forward
// reference before it is fetched back). Fetches are ordered by the
// forward request index they serve, evictions by release time, and the
// two lists are matched rank by rank. The forward pass replays this
// schedule against the real disk model in batches, exactly as the paper
// describes.
package revagg

import (
	"container/heap"
	"fmt"
	"sort"

	"ppcsim/internal/cache"
	"ppcsim/internal/engine"
	"ppcsim/internal/future"
	"ppcsim/internal/layout"
)

// Op is one forward fetch/eviction pair of the constructed schedule.
type Op struct {
	Fetch layout.BlockID
	// NeedIdx is the forward request index the fetch serves (len(refs)
	// for a fetch that serves no later reference).
	NeedIdx int
	// Evict is the block evicted when the fetch issues, or cache.NoBlock
	// for the unpaired fetches of the initial working set.
	Evict layout.BlockID
	// Release is the earliest forward index at which Evict may be evicted.
	Release int
}

// Schedule is the transformed forward schedule: the initial working-set
// fetches (no eviction, release 0) followed by the reverse pass's
// operations in reversed emission order, which is forward-chronological.
// Keeping the reverse pass's own fetch/eviction pairing (rather than
// re-sorting and re-matching by rank) guarantees that every eviction of a
// block precedes its scheduled refetch and that each pair's release time
// protects exactly the block it evicts.
type Schedule struct {
	Ops []Op
}

// BuildSchedule runs the reverse pass in the theoretical model (unit
// compute time per reference, F time units per fetch, fetches batched per
// disk) and returns the forward schedule.
//
// diskOf maps each block to its disk; nBlocks is the block ID space;
// capacity is the cache size K.
func BuildSchedule(refs []layout.BlockID, diskOf func(layout.BlockID) int, nBlocks, disks, capacity int, f float64, batch int) (*Schedule, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("revagg: capacity %d", capacity)
	}
	if f <= 0 {
		return nil, fmt.Errorf("revagg: fetch time estimate %g", f)
	}
	if batch <= 0 {
		return nil, fmt.Errorf("revagg: batch %d", batch)
	}
	n := len(refs)
	rev := make([]layout.BlockID, n)
	for i, b := range refs {
		rev[n-1-i] = b
	}
	oracle := future.New(rev, nBlocks)

	st := make([]uint8, nBlocks) // 0 absent, 1 in-flight, 2 present
	const (
		absent  = 0
		flying  = 1
		present = 2
	)
	used := 0
	lastUse := make([]int, nBlocks) // last consumed reverse index, -1 if none
	for i := range lastUse {
		lastUse[i] = -1
	}
	heaps := make([]evictHeap, disks) // per-disk furthest-next-use heaps
	freeAt := make([]float64, disks)
	type flight struct {
		block layout.BlockID
		done  float64
	}
	var inflight []flight

	// Forward ops under construction. Paired ops record both sides; drain
	// ops are appended at the end.
	type revOp struct {
		fwdFetch layout.BlockID // B: evicted in reverse
		needIdx  int
		fwdEvict layout.BlockID // M: fetched in reverse
		release  int
	}
	var pairs []revOp

	// Incremental first-missing scanner over the reverse sequence.
	scanPos := 0
	nextMissing := func(cursor int) int {
		if scanPos < cursor {
			scanPos = cursor
		}
		for scanPos < n {
			b := rev[scanPos]
			if st[b] == absent {
				return scanPos
			}
			scanPos++
		}
		return n
	}

	needIdxOf := func(b layout.BlockID) int {
		// Forward index served by a forward fetch of b emitted now: b's
		// most recent consumed reverse reference. A block evicted before
		// its first reverse use serves nothing (index n).
		if lastUse[b] < 0 {
			return n
		}
		return n - 1 - lastUse[b]
	}

	push := func(d int, b layout.BlockID) {
		heap.Push(&heaps[d], evEntry{b, int32(oracle.NextUse(b))})
	}
	furthestOn := func(d int) (layout.BlockID, int) {
		h := &heaps[d]
		for h.Len() > 0 {
			top := (*h)[0]
			if st[top.block] != present || int(top.next) != oracle.NextUse(top.block) {
				heap.Pop(h)
				continue
			}
			return top.block, int(top.next)
		}
		return cache.NoBlock, -1
	}

	t := 0.0
	cursor := 0
	for cursor < n {
		// Complete arrived fetches.
		kept := inflight[:0]
		for _, fl := range inflight {
			if fl.done <= t {
				st[fl.block] = present
				push(diskOf(fl.block), fl.block)
			} else {
				kept = append(kept, fl)
			}
		}
		inflight = kept

		// Warmup: while the cache is not full, missing blocks enter
		// instantly — in the forward direction these blocks simply remain
		// cached at the end of the run, so no operation is emitted.
		for used < capacity {
			p := nextMissing(cursor)
			if p >= n {
				break
			}
			b := rev[p]
			st[b] = present
			used++
			push(diskOf(b), b)
		}

		// Batch construction on every free disk.
		if used >= capacity {
			for d := 0; d < disks; d++ {
				if freeAt[d] > t {
					continue
				}
				for k := 0; k < batch; k++ {
					p := nextMissing(cursor)
					if p >= n {
						break
					}
					m := rev[p]
					b, bNext := furthestOn(d)
					if b == cache.NoBlock || bNext <= p {
						break // do no harm on this disk
					}
					// Emit the op: forward fetch of B serving needIdxOf(B),
					// forward eviction of M with release n-1-p+1 = n-p.
					pairs = append(pairs, revOp{
						fwdFetch: b,
						needIdx:  needIdxOf(b),
						fwdEvict: m,
						release:  n - p,
					})
					st[b] = absent
					if u := oracle.NextUse(b); u < scanPos {
						// B's next reverse use is missing again and may be
						// behind the scanner.
						scanPos = u
					}
					done := freeAt[d]
					if done < t {
						done = t
					}
					done += f
					freeAt[d] = done
					st[m] = flying
					inflight = append(inflight, flight{m, done})
				}
			}
		}

		// Advance: serve the reference if present, otherwise jump to the
		// earliest in-flight completion.
		b := rev[cursor]
		if st[b] == present {
			lastUse[b] = cursor
			cursor++
			oracle.Advance(cursor)
			if st[b] == present {
				push(diskOf(b), b)
			}
			t += 1
			continue
		}
		// Stalled: the block must be in flight (it is the first missing
		// block, so do-no-harm always allows fetching it when a disk
		// frees; in the worst case we wait for a disk).
		nextT := t + 1
		stalledOnFlight := false
		for _, fl := range inflight {
			if fl.block == b {
				nextT = fl.done
				stalledOnFlight = true
				break
			}
		}
		if !stalledOnFlight {
			// Wait for the earliest disk to free so the batch logic can
			// fetch it.
			earliest := freeAt[0]
			for _, fa := range freeAt[1:] {
				if fa < earliest {
					earliest = fa
				}
			}
			if earliest <= t {
				return nil, fmt.Errorf("revagg: reverse pass wedged at reverse index %d (block %d)", cursor, b)
			}
			nextT = earliest
		}
		t = nextT
	}

	// Drain: blocks still cached at the end of the reverse pass are the
	// forward run's initial working set — fetched from a cold cache with
	// no eviction, released immediately, ordered by the reference they
	// serve.
	var ops []Op
	for blk := 0; blk < nBlocks; blk++ {
		if st[blk] == present || st[blk] == flying {
			ops = append(ops, Op{
				Fetch:   layout.BlockID(blk),
				NeedIdx: needIdxOf(layout.BlockID(blk)),
				Evict:   cache.NoBlock,
				Release: 0,
			})
		}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].NeedIdx < ops[j].NeedIdx })
	// The paired operations follow in reversed emission order (reverse
	// time runs backwards through forward time). An eviction of a block
	// always precedes that block's next scheduled fetch in this order.
	for i := len(pairs) - 1; i >= 0; i-- {
		p := pairs[i]
		ops = append(ops, Op{
			Fetch:   p.fwdFetch,
			NeedIdx: p.needIdx,
			Evict:   p.fwdEvict,
			Release: p.release,
		})
	}
	return &Schedule{Ops: ops}, nil
}

// evEntry / evictHeap: lazy max-heap on reverse next use.
type evEntry struct {
	block layout.BlockID
	next  int32
}

type evictHeap []evEntry

func (h evictHeap) Len() int            { return len(h) }
func (h evictHeap) Less(i, j int) bool  { return h[i].next > h[j].next }
func (h evictHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *evictHeap) Push(x interface{}) { *h = append(*h, x.(evEntry)) }
func (h *evictHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Stats for diagnostics (read after a run; not part of the public API).
type Stats struct {
	ForcedIssues int // OnStall force-issues of scheduled ops
	AdHocIssues  int // OnStall fetches with no scheduled op
	FallbackEvts int // evictions that deviated from the schedule
}

// Policy replays a reverse aggressive schedule against the real disk
// model: whenever a disk is free, it issues the first up to batch-size
// released pairs whose fetch block resides on that disk.
type Policy struct {
	// FetchEstimate is the fixed F used to construct the schedule
	// (0 → 32, a mid-range value; the experiments sweep it).
	FetchEstimate float64
	// BatchSize is both the reverse-pass and forward-pass batch size
	// (0 → the Table 6 default for the array size).
	BatchSize int

	s      *engine.State
	sched  *Schedule
	byDisk [][]int // per disk: op indices in rank order
	ptr    []int   // per disk: next unconsidered position in byDisk
	issued []bool  // per op
	// pending fetch ops per block (rank order) for stall fallback.
	pending map[layout.BlockID][]int
	batch   int

	// Diagnostics.
	Stat Stats
	// ignoreReleases disables release gating (diagnostics only).
	ignoreReleases bool
}

// New returns a reverse aggressive policy with the given schedule
// parameters.
func New(fetchEstimate float64, batchSize int) *Policy {
	return &Policy{FetchEstimate: fetchEstimate, BatchSize: batchSize}
}

// Name implements engine.Policy.
func (p *Policy) Name() string { return "reverse-aggressive" }

// RequiresFullTrace marks the policy as incompatible with streaming
// sources: the reverse pass walks the whole reference sequence backwards
// before the run starts, so the engine must materialize the trace.
func (p *Policy) RequiresFullTrace() {}

// Attach implements engine.Policy: it constructs the offline schedule.
func (p *Policy) Attach(s *engine.State) {
	p.s = s
	f := p.FetchEstimate
	if f <= 0 {
		f = 32
	}
	p.batch = p.BatchSize
	if p.batch <= 0 {
		p.batch = defaultBatch(len(s.Drives))
	}
	sched, err := BuildSchedule(s.Refs, func(b layout.BlockID) int { return s.DiskOf(b) },
		s.Layout.NumBlocks(), len(s.Drives), s.Cache.Capacity(), f, p.batch)
	if err != nil {
		panic(fmt.Sprintf("revagg: %v", err))
	}
	p.sched = sched
	d := len(s.Drives)
	p.byDisk = make([][]int, d)
	p.ptr = make([]int, d)
	p.issued = make([]bool, len(sched.Ops))
	p.pending = make(map[layout.BlockID][]int, len(sched.Ops))
	for k, op := range sched.Ops {
		dd := s.DiskOf(op.Fetch)
		p.byDisk[dd] = append(p.byDisk[dd], k)
		p.pending[op.Fetch] = append(p.pending[op.Fetch], k)
	}
	// Issue fetches in increasing request-index order per disk, as the
	// paper prescribes ("fetches may need to be re-ordered according to
	// increasing request index"): this restores the spatial locality of
	// the request stream for CSCAN and the drive's readahead cache. Each
	// op keeps its own eviction and release time, so the reordering
	// cannot evict a block before its scheduled refetch: the eviction's
	// release is past the refetched block's use, and the engine's stall
	// handling force-issues any fetch the cursor catches up with.
	for d := range p.byDisk {
		q := p.byDisk[d]
		sort.SliceStable(q, func(i, j int) bool {
			return sched.Ops[q[i]].NeedIdx < sched.Ops[q[j]].NeedIdx
		})
	}
}

// defaultBatch mirrors policy.DefaultBatchSize without importing it (to
// avoid a dependency cycle if policy ever grows a revagg reference).
func defaultBatch(disks int) int {
	switch {
	case disks <= 1:
		return 80
	case disks <= 3:
		return 40
	case disks <= 5:
		return 16
	case disks <= 7:
		return 8
	default:
		return 4
	}
}

// released reports whether op k's eviction (if any) may happen now.
func (p *Policy) released(k int) bool {
	op := p.sched.Ops[k]
	if op.Evict == cache.NoBlock || p.ignoreReleases {
		return true
	}
	return op.Release <= p.s.Cursor()
}

// scanWindow bounds how far past the first unissued op a disk's queue is
// searched for released pairs (releases are only approximately monotone
// in emission order).
const scanWindow = 256

// issueOp executes op k. Returns false if it cannot be issued legally.
func (p *Policy) issueOp(k int) bool {
	s := p.s
	op := p.sched.Ops[k]
	if !s.Cache.Absent(op.Fetch) {
		// Already fetched (e.g. by a stall fallback); consume silently.
		p.issued[k] = true
		p.dropPending(op.Fetch, k)
		return true
	}
	victim := cache.NoBlock
	switch {
	case op.Evict != cache.NoBlock && s.Cache.Present(op.Evict):
		victim = op.Evict
	case s.Cache.FreeBuffers() > 0:
		victim = cache.NoBlock
	default:
		// The scheduled victim is gone (consumed by a fallback); evict
		// the furthest-future block instead.
		v, vUse := s.Cache.FurthestEvictable()
		if v == cache.NoBlock || vUse <= op.NeedIdx {
			return false
		}
		victim = v
		p.Stat.FallbackEvts++
	}
	s.Issue(op.Fetch, victim)
	p.issued[k] = true
	p.dropPending(op.Fetch, k)
	return true
}

func (p *Policy) dropPending(b layout.BlockID, k int) {
	lst := p.pending[b]
	for i, kk := range lst {
		if kk == k {
			p.pending[b] = append(lst[:i], lst[i+1:]...)
			return
		}
	}
}

// Poll implements engine.Policy.
func (p *Policy) Poll() {
	s := p.s
	for d, dr := range s.Drives {
		if dr.Outstanding() != 0 {
			continue
		}
		budget := p.batch
		q := p.byDisk[d]
		for p.ptr[d] < len(q) && p.issued[q[p.ptr[d]]] {
			p.ptr[d]++
		}
		for off := 0; off < scanWindow && budget > 0; off++ {
			i := p.ptr[d] + off
			if i >= len(q) {
				break
			}
			k := q[i]
			if p.issued[k] || !p.released(k) {
				continue
			}
			if !p.issueOp(k) {
				continue
			}
			budget--
		}
	}
}

// OnStall implements engine.Policy: force-issue the scheduled fetch for
// the stalled block, or fall back to a demand fetch.
func (p *Policy) OnStall(b layout.BlockID) {
	s := p.s
	p.Stat.ForcedIssues++
	if lst := p.pending[b]; len(lst) > 0 {
		k := lst[0]
		op := p.sched.Ops[k]
		victim := cache.NoBlock
		switch {
		case op.Evict != cache.NoBlock && s.Cache.Present(op.Evict):
			victim = op.Evict
		case s.Cache.FreeBuffers() > 0:
			victim = cache.NoBlock
		default:
			victim, _ = s.Cache.FurthestEvictable()
			if victim == cache.NoBlock {
				return // every buffer in flight; the engine retries
			}
		}
		s.Issue(b, victim)
		p.issued[k] = true
		p.dropPending(b, k)
		return
	}
	// No scheduled fetch (should not happen with a sound schedule): plain
	// demand fetch.
	p.Stat.AdHocIssues++
	if s.Cache.FreeBuffers() > 0 {
		s.Issue(b, cache.NoBlock)
		return
	}
	if v, _ := s.Cache.FurthestEvictable(); v != cache.NoBlock {
		s.Issue(b, v)
	}
}
