package revagg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppcsim/internal/cache"
	"ppcsim/internal/engine"
	"ppcsim/internal/future"
	"ppcsim/internal/layout"
	"ppcsim/internal/trace"
)

func mkRefs(ids ...int) []layout.BlockID {
	out := make([]layout.BlockID, len(ids))
	for i, v := range ids {
		out[i] = layout.BlockID(v)
	}
	return out
}

func modDisk(d int) func(layout.BlockID) int {
	return func(b layout.BlockID) int { return int(b) % d }
}

func TestBuildScheduleValidation(t *testing.T) {
	refs := mkRefs(0, 1)
	if _, err := BuildSchedule(refs, modDisk(1), 2, 1, 0, 2, 1); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := BuildSchedule(refs, modDisk(1), 2, 1, 2, 0, 1); err == nil {
		t.Error("zero F should fail")
	}
	if _, err := BuildSchedule(refs, modDisk(1), 2, 1, 2, 2, 0); err == nil {
		t.Error("zero batch should fail")
	}
}

func TestScheduleCoversColdCache(t *testing.T) {
	// Everything fits in cache: the schedule must fetch each distinct
	// block exactly once, with no evictions.
	refs := mkRefs(0, 1, 2, 3, 0, 1, 2, 3)
	sched, err := BuildSchedule(refs, modDisk(2), 4, 2, 8, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Ops) != 4 {
		t.Fatalf("ops = %d, want 4", len(sched.Ops))
	}
	seen := map[layout.BlockID]bool{}
	for _, op := range sched.Ops {
		if op.Evict != cache.NoBlock {
			t.Errorf("unexpected eviction of %d", op.Evict)
		}
		if seen[op.Fetch] {
			t.Errorf("block %d fetched twice", op.Fetch)
		}
		seen[op.Fetch] = true
	}
}

// checkScheduleLegal verifies the structural invariants of a schedule
// against the forward sequence.
func checkScheduleLegal(t *testing.T, refs []layout.BlockID, nBlocks int, sched *Schedule) {
	t.Helper()
	n := len(refs)
	for k, op := range sched.Ops {
		if op.NeedIdx < n && refs[op.NeedIdx] != op.Fetch {
			t.Fatalf("op %d: NeedIdx %d references %d, fetch is %d", k, op.NeedIdx, refs[op.NeedIdx], op.Fetch)
		}
		if op.Evict != cache.NoBlock {
			if op.Release < 1 || op.Release > n {
				t.Fatalf("op %d: release %d out of range", k, op.Release)
			}
			// Release is one past a reference to the evicted block.
			if refs[op.Release-1] != op.Evict {
				t.Fatalf("op %d: release %d does not follow a use of %d", k, op.Release, op.Evict)
			}
		}
	}
	// Replaying the ops block-by-block (ignoring timing) must serve every
	// reference: simulate with a set.
	// Eviction safety: every eviction of a block precedes that block's
	// next scheduled fetch in op order, and the first use of the block at
	// or after its release is exactly the reference that refetch serves.
	o := future.New(refs, nBlocks)
	nextFetchAfter := func(b layout.BlockID, k int) (int, bool) {
		for j := k + 1; j < len(sched.Ops); j++ {
			if sched.Ops[j].Fetch == b {
				return sched.Ops[j].NeedIdx, true
			}
		}
		return future.Never, false
	}
	for k, op := range sched.Ops {
		if op.Evict == cache.NoBlock {
			continue
		}
		refetch, hasRefetch := nextFetchAfter(op.Evict, k)
		u := o.NextUseAfter(op.Evict, op.Release)
		if u != future.Never {
			if !hasRefetch {
				t.Fatalf("op %d: evicted block %d is referenced at %d but never refetched",
					k, op.Evict, u)
			}
			if refetch != u {
				t.Fatalf("op %d: evicted block %d next used at %d but refetch serves %d",
					k, op.Evict, u, refetch)
			}
		}
	}
}

func TestScheduleLegalOnLoop(t *testing.T) {
	var ids []int
	for p := 0; p < 5; p++ {
		for i := 0; i < 12; i++ {
			ids = append(ids, i)
		}
	}
	refs := mkRefs(ids...)
	for _, disks := range []int{1, 2, 3} {
		for _, k := range []int{4, 8, 11} {
			sched, err := BuildSchedule(refs, modDisk(disks), 12, disks, k, 4, 8)
			if err != nil {
				t.Fatalf("d=%d k=%d: %v", disks, k, err)
			}
			checkScheduleLegal(t, refs, 12, sched)
		}
	}
}

func TestScheduleLegalRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nBlocks := 4 + rng.Intn(20)
		n := 20 + rng.Intn(200)
		refs := make([]layout.BlockID, n)
		for i := range refs {
			refs[i] = layout.BlockID(rng.Intn(nBlocks))
		}
		disks := 1 + rng.Intn(4)
		k := 2 + rng.Intn(nBlocks)
		fEst := float64(1 + rng.Intn(16))
		batch := 1 + rng.Intn(8)
		sched, err := BuildSchedule(refs, modDisk(disks), nBlocks, disks, k, fEst, batch)
		if err != nil {
			t.Log(err)
			return false
		}
		checkScheduleLegal(t, refs, nBlocks, sched)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// loopTrace for engine-level runs.
func loopTrace(n, passes int, computeMs float64, cacheBlocks int) *trace.Trace {
	tr := &trace.Trace{
		Name:        "loop",
		Files:       []layout.File{{First: 0, Blocks: n}},
		CacheBlocks: cacheBlocks,
	}
	for p := 0; p < passes; p++ {
		for i := 0; i < n; i++ {
			tr.Refs = append(tr.Refs, trace.Ref{Block: layout.BlockID(i), ComputeMs: computeMs})
		}
	}
	return tr
}

func TestPolicyEndToEnd(t *testing.T) {
	tr := loopTrace(100, 4, 1.5, 64)
	for _, disks := range []int{1, 2, 4} {
		p := New(8, 16)
		r, err := engine.Run(engine.Config{Trace: tr, Policy: p, Disks: disks})
		if err != nil {
			t.Fatalf("d=%d: %v", disks, err)
		}
		if r.CacheHits+r.CacheMisses != int64(len(tr.Refs)) {
			t.Fatalf("d=%d: served %d, want %d", disks, r.CacheHits+r.CacheMisses, len(tr.Refs))
		}
		min := int64(100 + 3*(100-64))
		if r.Fetches < min {
			t.Errorf("d=%d: fetches %d below MIN bound %d", disks, r.Fetches, min)
		}
	}
}

func TestPolicyEndToEndRandomTraces(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nBlocks := 8 + rng.Intn(40)
		n := 50 + rng.Intn(400)
		tr := &trace.Trace{
			Name:        "rand",
			Files:       []layout.File{{First: 0, Blocks: layoutBlocks(nBlocks)}},
			CacheBlocks: 3 + rng.Intn(nBlocks),
		}
		for i := 0; i < n; i++ {
			tr.Refs = append(tr.Refs, trace.Ref{
				Block:     layout.BlockID(rng.Intn(nBlocks)),
				ComputeMs: rng.Float64() * 4,
			})
		}
		p := New(float64(1+rng.Intn(32)), 1+rng.Intn(40))
		r, err := engine.Run(engine.Config{Trace: tr, Policy: p, Disks: 1 + rng.Intn(5)})
		if err != nil {
			t.Log(err)
			return false
		}
		return r.CacheHits+r.CacheMisses == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func layoutBlocks(n int) int { return n }

// TestScheduleLegalOnBundledTraces checks the structural invariants on
// slices of the real workloads, where access patterns are far less
// uniform than the random traces.
func TestScheduleLegalOnBundledTraces(t *testing.T) {
	for _, spec := range []struct {
		name  string
		k     int
		disks int
	}{
		{"glimpse", 400, 3},
		{"postgres-select", 300, 2},
		{"xds", 500, 4},
		{"cscope3", 600, 1},
	} {
		tr, err := trace.ByName(spec.name)
		if err != nil {
			t.Fatal(err)
		}
		tr = tr.Truncate(3000)
		lay, err := tr.Layout(spec.disks, 0)
		if err != nil {
			t.Fatal(err)
		}
		refs := make([]layout.BlockID, len(tr.Refs))
		for i, r := range tr.Refs {
			refs[i] = r.Block
		}
		sched, err := BuildSchedule(refs, func(b layout.BlockID) int { return lay.Lookup(b).Disk },
			tr.NumBlocks(), spec.disks, spec.k, 8, 16)
		if err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		checkScheduleLegal(t, refs, tr.NumBlocks(), sched)
		if t.Failed() {
			t.Fatalf("%s: schedule illegal", spec.name)
		}
	}
}

func TestRevAggCloseToBestOnSynth(t *testing.T) {
	tr, err := trace.ByName("synth")
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.Truncate(20000)
	for _, disks := range []int{1, 3} {
		fh, _ := engine.Run(engine.Config{Trace: tr, Policy: fhPolicy(), Disks: disks})
		ag, _ := engine.Run(engine.Config{Trace: tr, Policy: agPolicy(), Disks: disks})
		best := fh.ElapsedSec
		if ag.ElapsedSec < best {
			best = ag.ElapsedSec
		}
		// Best-of-grid reverse aggressive should be within 20% of the
		// better of the two online algorithms (the paper: within ~10%).
		var bestRA float64
		for _, f := range []float64{2, 3, 4, 16, 64} {
			for _, b := range []int{8, 40, 80} {
				r, err := engine.Run(engine.Config{Trace: tr, Policy: New(f, b), Disks: disks})
				if err != nil {
					t.Fatal(err)
				}
				if bestRA == 0 || r.ElapsedSec < bestRA {
					bestRA = r.ElapsedSec
				}
			}
		}
		if bestRA > best*1.2 {
			t.Errorf("d=%d: reverse aggressive %g, best online %g", disks, bestRA, best)
		}
	}
}

// Minimal local copies of the online policies to avoid a dependency on
// package policy (which would be circular only in spirit, but keep the
// test self-contained).
type simpleFH struct {
	s       *engine.State
	scanned int
}

func fhPolicy() engine.Policy { return &simpleFH{} }

func (f *simpleFH) Name() string           { return "test-fh" }
func (f *simpleFH) Attach(s *engine.State) { f.s = s }
func (f *simpleFH) Poll() {
	s := f.s
	c := s.Cursor()
	limit := c + 62
	if n := s.Len(); limit > n {
		limit = n
	}
	if f.scanned < c {
		f.scanned = c
	}
	for ; f.scanned < limit; f.scanned++ {
		b := s.Refs[f.scanned]
		if !s.Cache.Absent(b) {
			continue
		}
		if s.Cache.FreeBuffers() > 0 {
			s.Issue(b, cache.NoBlock)
			continue
		}
		v, use := s.Cache.FurthestEvictable()
		if v == cache.NoBlock || use <= c+62 {
			continue
		}
		s.Issue(b, v)
	}
}
func (f *simpleFH) OnStall(b layout.BlockID) {
	if f.s.Cache.FreeBuffers() > 0 {
		f.s.Issue(b, cache.NoBlock)
		return
	}
	v, _ := f.s.Cache.FurthestEvictable()
	f.s.Issue(b, v)
}

type simpleAg struct{ simpleFH }

func agPolicy() engine.Policy { return &simpleAg{} }

func (a *simpleAg) Name() string           { return "test-ag" }
func (a *simpleAg) Attach(s *engine.State) { a.s = s }
func (a *simpleAg) Poll() {
	s := a.s
	for _, dr := range s.Drives {
		if dr.Outstanding() != 0 {
			return
		}
	}
	// Single batch across the array: fetch the next few missing blocks.
	c := s.Cursor()
	issued := 0
	for p := c; p < s.Len() && issued < 40; p++ {
		b := s.Refs[p]
		if !s.Cache.Absent(b) {
			continue
		}
		if s.Cache.FreeBuffers() > 0 {
			s.Issue(b, cache.NoBlock)
			issued++
			continue
		}
		v, use := s.Cache.FurthestEvictable()
		if v == cache.NoBlock || use <= p {
			break
		}
		s.Issue(b, v)
		issued++
	}
}
