package layout

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewStripesRoundRobin(t *testing.T) {
	l, err := New(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if l.Disks() != 4 || l.NumBlocks() != 100 {
		t.Fatalf("got disks=%d blocks=%d", l.Disks(), l.NumBlocks())
	}
	for i := 0; i < 100; i++ {
		p := l.Lookup(BlockID(i))
		if p.Disk != i%4 {
			t.Errorf("block %d on disk %d, want %d", i, p.Disk, i%4)
		}
		if p.LBN != int64(i/4) {
			t.Errorf("block %d at LBN %d, want %d", i, p.LBN, i/4)
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(10, 0); err == nil {
		t.Error("zero disks should fail")
	}
	if _, err := New(10, -1); err == nil {
		t.Error("negative disks should fail")
	}
	if _, err := New(-1, 2); err == nil {
		t.Error("negative blocks should fail")
	}
	if l, err := New(0, 2); err != nil || l.NumBlocks() != 0 {
		t.Errorf("empty layout should be fine, got %v", err)
	}
}

func TestNewFilesContiguity(t *testing.T) {
	files := []File{{0, 100}, {100, 50}, {150, GroupBlocks + 1}}
	l, err := NewFiles(files, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		base := l.Logical(f.First)
		for o := 0; o < f.Blocks; o++ {
			b := f.First + BlockID(o)
			if got := l.Logical(b); got != base+int64(o) {
				t.Fatalf("file block %d logical %d, want %d (files must be contiguous on disk)", b, got, base+int64(o))
			}
			p := l.Lookup(b)
			if want := (base + int64(o)) % 3; int64(p.Disk) != want {
				t.Fatalf("block %d disk %d, want %d", b, p.Disk, want)
			}
			if want := (base + int64(o)) / 3; p.LBN != want {
				t.Fatalf("block %d LBN %d, want %d", b, p.LBN, want)
			}
		}
	}
}

func TestNewFilesGroupPlacement(t *testing.T) {
	// Each file must start within its own group span and files must not
	// overlap.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var files []File
		next := 0
		for i := 0; i < 10; i++ {
			n := 1 + rng.Intn(2*GroupBlocks)
			files = append(files, File{BlockID(next), n})
			next += n
		}
		l, err := NewFiles(files, 1+rng.Intn(8), rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		group := int64(0)
		for _, f := range files {
			groups := int64((f.Blocks + GroupBlocks - 1) / GroupBlocks)
			lo, hi := group*GroupBlocks, (group+groups)*GroupBlocks
			start := l.Logical(f.First)
			end := start + int64(f.Blocks)
			if start < lo || end > hi {
				t.Fatalf("file [%d,%d) placed at [%d,%d) outside group span [%d,%d)",
					f.First, int(f.First)+f.Blocks, start, end, lo, hi)
			}
			group += groups
		}
	}
}

func TestNewFilesDeterministic(t *testing.T) {
	files := []File{{0, 10}, {10, 20}}
	a, _ := NewFiles(files, 2, 99)
	b, _ := NewFiles(files, 2, 99)
	for i := 0; i < 30; i++ {
		if a.Logical(BlockID(i)) != b.Logical(BlockID(i)) {
			t.Fatal("same seed must give same placement")
		}
	}
	c, _ := NewFiles(files, 2, 100)
	same := true
	for i := 0; i < 30; i++ {
		if a.Logical(BlockID(i)) != c.Logical(BlockID(i)) {
			same = false
		}
	}
	if same {
		t.Log("different seeds gave identical placement (possible but unlikely)")
	}
}

func TestNewFilesErrors(t *testing.T) {
	if _, err := NewFiles([]File{{0, 10}}, 0, 1); err == nil {
		t.Error("zero disks should fail")
	}
	if _, err := NewFiles([]File{{0, 0}}, 1, 1); err == nil {
		t.Error("empty file should fail")
	}
	if _, err := NewFiles([]File{{5, 10}}, 1, 1); err == nil {
		t.Error("non-contiguous file numbering should fail")
	}
	if _, err := NewFiles([]File{{0, 10}, {11, 5}}, 1, 1); err == nil {
		t.Error("gap in file numbering should fail")
	}
}

// TestStripeProperty: striping is a bijection between logical numbers and
// (disk, LBN) pairs.
func TestStripeProperty(t *testing.T) {
	f := func(logical uint16, disksRaw uint8) bool {
		disks := int(disksRaw%16) + 1
		p := stripe(int64(logical), disks)
		back := p.LBN*int64(disks) + int64(p.Disk)
		return back == int64(logical) && p.Disk >= 0 && p.Disk < disks
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
