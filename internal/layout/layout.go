// Package layout maps application data blocks onto a striped array of
// disks, reproducing the data-placement policy of the paper (section 3.2):
// data is striped across the array with a one-block stripe unit, and traces
// that name blocks by (file, offset) pairs get a random starting point for
// each file within a group of 8550 8-Kbyte blocks (100 cylinders on the
// HP 97560), corresponding to typical file-system clustering.
package layout

import (
	"fmt"
	"math/rand"
)

// BlockSize is the simulated file-system block size in bytes (8 Kbytes).
const BlockSize = 8192

// GroupBlocks is the size, in blocks, of the placement group used for
// per-file random starting points: 8550 blocks occupy 100 cylinders on the
// HP 97560 (72 sectors/track * 19 tracks * 100 cylinders * 512 bytes /
// 8192 bytes = 8550 blocks).
const GroupBlocks = 8550

// BlockID identifies one application-level file block.
type BlockID int32

// Place describes where a block lives on the array.
type Place struct {
	Disk int   // which disk holds the block
	LBN  int64 // logical block number within that disk, in 8K blocks
}

// Layout maps BlockIDs to disk locations. A Layout is immutable after
// construction and safe for concurrent readers.
type Layout struct {
	disks   int
	place   []Place // indexed by BlockID
	logical []int64 // logical (array-wide) block number, for tests
}

// Disks returns the number of disks in the array.
func (l *Layout) Disks() int { return l.disks }

// NumBlocks returns how many distinct blocks the layout maps.
func (l *Layout) NumBlocks() int { return len(l.place) }

// Lookup returns the placement of block b.
func (l *Layout) Lookup(b BlockID) Place {
	return l.place[b]
}

// Logical returns the array-wide logical block number assigned to b before
// striping. Exposed for tests and diagnostics.
func (l *Layout) Logical(b BlockID) int64 { return l.logical[b] }

// stripe converts an array-wide logical block number into a per-disk
// placement using a one-block stripe unit.
func stripe(logical int64, disks int) Place {
	return Place{
		Disk: int(logical % int64(disks)),
		LBN:  logical / int64(disks),
	}
}

// New builds a layout for nBlocks distinct blocks whose trace identifies
// them by logical file-system block number: block i is placed at
// array-logical block i (then striped). This models the traces in the paper
// that "referred to logical filesystem block numbers".
func New(nBlocks, disks int) (*Layout, error) {
	if disks <= 0 {
		return nil, fmt.Errorf("layout: disks must be positive, got %d", disks)
	}
	if nBlocks < 0 {
		return nil, fmt.Errorf("layout: negative block count %d", nBlocks)
	}
	l := &Layout{
		disks:   disks,
		place:   make([]Place, nBlocks),
		logical: make([]int64, nBlocks),
	}
	for i := 0; i < nBlocks; i++ {
		l.logical[i] = int64(i)
		l.place[i] = stripe(int64(i), disks)
	}
	return l, nil
}

// File describes one file of a (file, offset)-addressed trace: its first
// BlockID and its length in blocks. Blocks of the file are the contiguous
// BlockID range [First, First+Blocks).
type File struct {
	First  BlockID
	Blocks int
}

// NewFiles builds a layout for a trace that addresses blocks as
// (file, offset) pairs. Each file is assigned a random starting point
// within a group of GroupBlocks blocks (seeded deterministically by seed),
// mirroring the paper's placement of files within 100-cylinder groups.
// Consecutive files occupy consecutive groups, so distinct files never
// collide. The resulting array-logical positions are then striped across
// the disks with a one-block stripe unit.
func NewFiles(files []File, disks int, seed int64) (*Layout, error) {
	if disks <= 0 {
		return nil, fmt.Errorf("layout: disks must be positive, got %d", disks)
	}
	total := 0
	for i, f := range files {
		if f.Blocks <= 0 {
			return nil, fmt.Errorf("layout: file %d has non-positive size %d", i, f.Blocks)
		}
		if int(f.First) != total {
			return nil, fmt.Errorf("layout: file %d starts at block %d, want contiguous %d", i, f.First, total)
		}
		total += f.Blocks
	}
	rng := rand.New(rand.NewSource(seed))
	l := &Layout{
		disks:   disks,
		place:   make([]Place, total),
		logical: make([]int64, total),
	}
	group := int64(0)
	for _, f := range files {
		// Number of whole groups this file spans, rounding up.
		groupsNeeded := int64((f.Blocks + GroupBlocks - 1) / GroupBlocks)
		// Random start within the group keeps the maximum intra-file seek
		// small, as in the paper; the file may spill into the next group.
		slack := int64(GroupBlocks*int(groupsNeeded) - f.Blocks)
		start := group*GroupBlocks + rng.Int63n(slack+1)
		for o := 0; o < f.Blocks; o++ {
			b := int(f.First) + o
			l.logical[b] = start + int64(o)
			l.place[b] = stripe(start+int64(o), disks)
		}
		group += groupsNeeded
	}
	return l, nil
}
