package layout

import (
	"math/rand"
	"testing"
)

// TestStripingBijectionPerDiskCount checks, for every disk count and
// both construction paths, that block → (disk, LBN) placement is a
// bijection: no two blocks share a physical location (injectivity), and
// every placement round-trips to the block's array-logical number
// (which, with the contiguous logical image, gives surjectivity onto the
// striped range).
func TestStripingBijectionPerDiskCount(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, disks := range []int{1, 2, 3, 4, 5, 7, 8, 10, 13, 16} {
		l, err := New(4096, disks)
		if err != nil {
			t.Fatal(err)
		}
		assertBijection(t, l, disks)

		for trial := 0; trial < 10; trial++ {
			var files []File
			next := 0
			for len(files) < 6 {
				n := 1 + rng.Intn(GroupBlocks/2)
				files = append(files, File{BlockID(next), n})
				next += n
			}
			lf, err := NewFiles(files, disks, rng.Int63())
			if err != nil {
				t.Fatal(err)
			}
			assertBijection(t, lf, disks)
		}
	}
}

func assertBijection(t *testing.T, l *Layout, disks int) {
	t.Helper()
	seen := make(map[Place]BlockID, l.NumBlocks())
	for i := 0; i < l.NumBlocks(); i++ {
		b := BlockID(i)
		p := l.Lookup(b)
		if p.Disk < 0 || p.Disk >= disks {
			t.Fatalf("block %d on disk %d outside [0,%d)", b, p.Disk, disks)
		}
		if p.LBN < 0 {
			t.Fatalf("block %d at negative LBN %d", b, p.LBN)
		}
		if prev, dup := seen[p]; dup {
			t.Fatalf("blocks %d and %d collide at disk %d LBN %d", prev, b, p.Disk, p.LBN)
		}
		seen[p] = b
		if back := p.LBN*int64(disks) + int64(p.Disk); back != l.Logical(b) {
			t.Fatalf("block %d: placement (%d,%d) inverts to logical %d, want %d",
				b, p.Disk, p.LBN, back, l.Logical(b))
		}
	}
}

// TestStripingBalance checks the striping invariant that a contiguous
// logical range spreads across disks as evenly as possible: per-disk
// counts differ by at most one block.
func TestStripingBalance(t *testing.T) {
	for _, disks := range []int{1, 2, 3, 4, 6, 9, 16} {
		const n = 1000
		l, err := New(n, disks)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, disks)
		for i := 0; i < n; i++ {
			counts[l.Lookup(BlockID(i)).Disk]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Errorf("disks=%d: per-disk counts %v spread more than 1", disks, counts)
		}
	}
}
