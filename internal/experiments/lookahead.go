package experiments

import (
	"fmt"

	"ppcsim"
	"ppcsim/internal/report"
)

// Lookahead sweeps the hint lookahead window W for the paper's online
// algorithms and compares them against the two hint-less online policies
// (readahead, history). The paper has no counterpart for this sweep —
// its section 6 names limited knowledge as an open question — so the
// expected shape comes from its discussion: elapsed time should fall
// monotonically as W grows and approach the full-knowledge value once W
// covers a cache-full of references, while the hint-less baselines are
// flat lines that bound the W→0 end from above (history, readahead) and
// the W→∞ end from below (full hints).
func Lookahead(o *Options) error {
	names := []string{"synth", "xds"}
	windows := []int{16, 64, 256, 1024, 0}
	if o.Quick {
		names = []string{"synth"}
		windows = []int{16, 256, 0}
	}
	const disks = 4
	for _, name := range names {
		if err := lookaheadSweep(o, "lookahead-"+name, getTrace(o, name), disks, windows); err != nil {
			return err
		}
	}
	return nil
}

// lookaheadSweep renders the window-sweep table and figure for one
// trace. It is factored out of Lookahead so the golden tests can drive
// it with a small synthetic trace; windows lists the W values to sweep,
// with 0 meaning unlimited lookahead.
func lookaheadSweep(o *Options, figID string, tr *ppcsim.Trace, disks int, windows []int) error {
	algs := []ppcsim.Algorithm{ppcsim.Demand, ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.Forestall}
	online := []ppcsim.Algorithm{ppcsim.Readahead, ppcsim.History}

	t := &report.Table{
		Title:   fmt.Sprintf("Lookahead window sweep on %s (%d disks): elapsed time (secs)", tr.Name, disks),
		Columns: []string{"window"},
	}
	for _, a := range algs {
		t.Columns = append(t.Columns, string(a))
	}
	for _, a := range online {
		t.Columns = append(t.Columns, string(a))
	}

	// The hint-less baselines ignore the window entirely; run them once.
	var onlineCfgs []ppcsim.Options
	for _, a := range online {
		onlineCfgs = append(onlineCfgs, ppcsim.Options{Trace: tr, Algorithm: a, Disks: disks})
	}
	onlineRes := runParallel(onlineCfgs)

	fig := &report.Figure{
		Title:    fmt.Sprintf("Lookahead window sweep on %s (%d disks)", tr.Name, disks),
		SegNames: []string{"cpu", "driver", "stall"},
		Unit:     "s",
	}
	for _, w := range windows {
		label := fmt.Sprintf("W=%d", w)
		var hints *ppcsim.HintSpec
		if w == 0 {
			label = "unlimited"
		} else {
			hints = &ppcsim.HintSpec{Fraction: 1, Accuracy: 1, Window: w}
		}
		var cfgs []ppcsim.Options
		for _, a := range algs {
			cfgs = append(cfgs, ppcsim.Options{Trace: tr, Algorithm: a, Disks: disks, Hints: hints})
		}
		row := []string{label}
		for i, r := range runParallel(cfgs) {
			row = append(row, report.F(r.ElapsedSec))
			fig.Add(fmt.Sprintf("%-9s %-9s", label, abbrev(string(algs[i]))),
				r.ComputeSec, r.DriverTimeSec, r.StallTimeSec)
		}
		for _, r := range onlineRes {
			row = append(row, report.F(r.ElapsedSec))
		}
		t.AddRow(row...)
	}
	for i, r := range onlineRes {
		fig.Add(fmt.Sprintf("%-9s %-9s", "no hints", abbrev(string(online[i]))),
			r.ComputeSec, r.DriverTimeSec, r.StallTimeSec)
	}
	t.Notes = append(t.Notes,
		"W limits how far past the cursor hinted references are visible; eviction falls back to LRU beyond the horizon",
		"readahead and history use no hints at all, so their columns do not vary with W")
	t.Render(o.Out)
	renderFigure(o, figID, fig)
	return nil
}
