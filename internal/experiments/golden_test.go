package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ppcsim/internal/trace/tracetest"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s.\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// goldenLookahead runs the lookahead sweep on a small deterministic loop
// trace, small enough that the golden run finishes in well under a
// second. The cache is halved so the windowed LRU-fallback eviction path
// is exercised, not just the full-residency fast path.
func goldenLookahead(t *testing.T, svgDir string) string {
	t.Helper()
	tr := tracetest.Loop("golden-loop", 32, 400, 2.0)
	tr.CacheBlocks = 16
	var buf bytes.Buffer
	o := &Options{Out: &buf, SVGDir: svgDir}
	if err := lookaheadSweep(o, "lookahead-golden", tr, 2, []int{4, 16, 0}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestGoldenLookaheadTable pins the exact bytes of the lookahead sweep's
// table and text figure: the experiment output is diffed across runs to
// verify determinism, so formatting or result drift is a regression.
func TestGoldenLookaheadTable(t *testing.T) {
	checkGolden(t, "golden_lookahead.txt", goldenLookahead(t, ""))
}

// TestGoldenLookaheadSVG pins the sweep's SVG figure export.
func TestGoldenLookaheadSVG(t *testing.T) {
	dir := t.TempDir()
	goldenLookahead(t, dir)
	svg, err := os.ReadFile(filepath.Join(dir, "lookahead-golden.svg"))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_lookahead.svg", string(svg))
}

// TestGoldenLookaheadStable renders the sweep twice; experiments must be
// pure functions of their inputs.
func TestGoldenLookaheadStable(t *testing.T) {
	if goldenLookahead(t, "") != goldenLookahead(t, "") {
		t.Fatal("two renders of the lookahead sweep differ")
	}
}
