package experiments

import (
	"fmt"

	"ppcsim"
)

// AppendixA reproduces the baseline measurements: every trace, the four
// algorithms (fixed horizon H=62, aggressive with Table 6 batch sizes,
// reverse aggressive with best-of-grid parameters, forestall with dynamic
// estimation) across the appendix array sizes.
func AppendixA(o *Options) error {
	names := ppcsim.TraceNames
	if o.Quick {
		names = []string{"cscope1", "postgres-select", "synth"}
	}
	for _, name := range names {
		disks := diskCounts(name)
		var series []algSeries
		for _, alg := range []ppcsim.Algorithm{ppcsim.FixedHorizon, ppcsim.Aggressive} {
			if o.wantAlg(alg) {
				series = append(series, collect(o, name, alg, disks, nil))
			}
		}
		if o.wantAlg(ppcsim.ReverseAggressive) {
			series = append(series, collectRevAggBest(o, name, disks, nil))
		}
		if o.wantAlg(ppcsim.Forestall) {
			series = append(series, collect(o, name, ppcsim.Forestall, disks, nil))
		}
		if len(series) == 0 {
			continue
		}
		appendixTable(fmt.Sprintf("Performance on the %s trace (baseline)", name), disks, series).Render(o.Out)
	}
	return nil
}

// AppendixB reproduces the FCFS measurements: the baseline configurations
// with FCFS disk-head scheduling instead of CSCAN.
func AppendixB(o *Options) error {
	names := ppcsim.TraceNames
	if o.Quick {
		names = []string{"cscope1", "postgres-select"}
	}
	fcfs := func(c *ppcsim.Options) { c.Scheduler = ppcsim.FCFS }
	for _, name := range names {
		disks := diskCounts(name)
		var series []algSeries
		for _, alg := range []ppcsim.Algorithm{ppcsim.FixedHorizon, ppcsim.Aggressive} {
			if o.wantAlg(alg) {
				series = append(series, collect(o, name, alg, disks, fcfs))
			}
		}
		if o.wantAlg(ppcsim.ReverseAggressive) {
			series = append(series, collectRevAggBest(o, name, disks, fcfs))
		}
		if len(series) == 0 {
			continue
		}
		appendixTable(fmt.Sprintf("Performance on the %s trace (FCFS scheduling)", name), disks, series).Render(o.Out)
	}
	return nil
}

// AppendixC reproduces the double-speed-CPU measurements on the xds
// trace: compute times halved, fixed horizon's H doubled to 124.
func AppendixC(o *Options) error {
	base := getTrace(o, "xds")
	fast := base.ScaleCompute(0.5)
	fast.Name = "xds (2x CPU)"
	disks := []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16}
	if o.Quick {
		disks = []int{1, 2, 4}
	}
	mkSeries := func(alg ppcsim.Algorithm, mutate func(*ppcsim.Options)) algSeries {
		s := algSeries{name: string(alg), res: map[int]ppcsim.Result{}}
		var cfgs []ppcsim.Options
		for _, d := range disks {
			cfg := ppcsim.Options{Trace: fast, Algorithm: alg, Disks: d}
			if mutate != nil {
				mutate(&cfg)
			}
			cfgs = append(cfgs, cfg)
		}
		res := runParallel(cfgs)
		for i, d := range disks {
			s.res[d] = res[i]
		}
		return s
	}
	series := []algSeries{
		mkSeries(ppcsim.FixedHorizon, func(c *ppcsim.Options) { c.Horizon = 124 }),
		mkSeries(ppcsim.Aggressive, nil),
	}
	rev := algSeries{name: string(ppcsim.ReverseAggressive), res: map[int]ppcsim.Result{}}
	for _, d := range disks {
		rev.res[d] = revAggBest(o, ppcsim.Options{Trace: fast, Disks: d})
	}
	series = append(series, rev)
	t := appendixTable("Performance on the xds trace with a double-speed CPU (H=124)", disks, series)
	t.Notes = append(t.Notes, "faster processors shift the fixed-horizon/aggressive crossover to larger arrays")
	t.Render(o.Out)
	return nil
}

// AppendixD reproduces the cache-size measurements: glimpse,
// postgres-join, postgres-select and xds with 640- and 1920-block caches.
func AppendixD(o *Options) error {
	names := []string{"glimpse", "postgres-join", "postgres-select", "xds"}
	if o.Quick {
		names = []string{"postgres-select"}
	}
	for _, name := range names {
		for _, k := range []int{640, 1920} {
			disks := diskCounts(name)
			if len(disks) > 6 {
				disks = disks[:6]
			}
			setK := func(c *ppcsim.Options) { c.CacheBlocks = k }
			series := []algSeries{
				collect(o, name, ppcsim.FixedHorizon, disks, setK),
				collect(o, name, ppcsim.Aggressive, disks, setK),
				collectRevAggBest(o, name, disks, setK),
			}
			appendixTable(fmt.Sprintf("Performance on the %s trace, cache size %d", name, k), disks, series).Render(o.Out)
		}
	}
	return nil
}
