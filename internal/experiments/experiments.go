// Package experiments regenerates every table and figure of the paper's
// evaluation (section 4, section 5, and appendices A–H) from the
// simulator. Each experiment has a stable ID; see DESIGN.md for the
// experiment index mapping IDs to paper artifacts.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ppcsim"
	"ppcsim/internal/report"
)

// Options configures an experiment run.
type Options struct {
	// Out receives the rendered tables and figures.
	Out io.Writer
	// Quick truncates traces and shrinks parameter grids so the whole
	// suite runs in seconds; shapes are preserved, magnitudes shrink.
	Quick bool
	// RevAggEstimates / RevAggBatches override the grid used when
	// reverse aggressive's parameters are "chosen to minimize elapsed
	// time" (the paper's baseline rule).
	RevAggEstimates []float64
	RevAggBatches   []int
	// Algs, when non-empty, restricts the multi-algorithm experiments
	// (the appendix baselines) to the listed algorithms.
	Algs []ppcsim.Algorithm
	// SVGDir, when set, also writes every figure as an SVG file there.
	SVGDir string
}

func (o *Options) estimates() []float64 {
	if len(o.RevAggEstimates) > 0 {
		return o.RevAggEstimates
	}
	if o.Quick {
		return []float64{2, 8, 32}
	}
	return []float64{2, 3, 4, 8, 16, 32, 64, 128}
}

func (o *Options) batches() []int {
	if len(o.RevAggBatches) > 0 {
		return o.RevAggBatches
	}
	if o.Quick {
		return []int{16, 80}
	}
	return []int{4, 8, 16, 40, 80, 160}
}

// wantAlg reports whether the Algs filter admits the algorithm (an empty
// filter admits everything).
func (o *Options) wantAlg(a ppcsim.Algorithm) bool {
	if len(o.Algs) == 0 {
		return true
	}
	for _, want := range o.Algs {
		if want == a {
			return true
		}
	}
	return false
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(o *Options) error
}

// Registry returns every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table2", "Table 2: cross-validation of the two disk models (xds, synth)", Table2},
		{"table3", "Table 3: trace summary data", Table3},
		{"fig2", "Figure 2: performance on the postgres-select trace (with demand fetching)", Fig2},
		{"fig3", "Figure 3: performance on the synth and cscope1 traces", Fig3},
		{"table4", "Table 4: disk utilization on the postgres-select trace", Table4},
		{"fig4", "Figure 4: performance on the ld trace", Fig4},
		{"fig5", "Figure 5: performance on the cscope3 trace", Fig5},
		{"table5", "Table 5: CSCAN improvement over FCFS on the postgres-select trace", Table5},
		{"fig6", "Figure 6: aggressive's performance vs batch size on the cscope2 trace", Fig6},
		{"fig7", "Figure 7: fixed horizon's performance vs prefetch horizon (cscope1, cscope2)", Fig7},
		{"table7", "Table 7: fixed horizon vs aggressive as a function of cache size (glimpse)", Table7},
		{"fig8", "Figure 8: forestall on the synth and xds traces", Fig8},
		{"fig9", "Figure 9: forestall on the cscope2 trace", Fig9},
		{"fig10", "Figure 10: forestall on the glimpse trace", Fig10},
		{"table8", "Table 8: forestall's disk utilization on the postgres-select trace", Table8},
		{"appA", "Appendix A: baseline measurements, all traces", AppendixA},
		{"appB", "Appendix B: FCFS disk-head scheduling, all traces", AppendixB},
		{"appC", "Appendix C: double-speed CPU (xds)", AppendixC},
		{"appD", "Appendix D: varying cache size (glimpse, postgres-join, postgres-select, xds)", AppendixD},
		{"appE", "Appendix E: varying aggressive's batch size", AppendixE},
		{"appF", "Appendix F: varying reverse aggressive's parameters", AppendixF},
		{"appG", "Appendix G: varying fixed horizon's horizon", AppendixG},
		{"appH", "Appendix H: forestall with fixed fetch time estimates", AppendixH},
		{"ext-lru", "Extension: LRU vs optimal replacement vs prefetching", ExtLRU},
		{"ext-hints", "Extension: sensitivity to incomplete and inaccurate hints", ExtHints},
		{"ext-writes", "Extension: write-behind traffic interfering with prefetching", ExtWrites},
		{"ext-multi", "Extension: competing processes sharing the cache and array", ExtMulti},
		{"lookahead", "Extension: elapsed time vs lookahead window, with hint-less online baselines", Lookahead},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order.
func RunAll(o *Options) error {
	for _, e := range Registry() {
		fmt.Fprintf(o.Out, "### %s — %s\n\n", e.ID, e.Title)
		if err := e.Run(o); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// --- trace cache -----------------------------------------------------

var (
	traceMu    sync.Mutex
	traceCache = map[string]*ppcsim.Trace{}
)

// getTrace returns the (possibly truncated) named trace, memoized.
func getTrace(o *Options, name string) *ppcsim.Trace {
	key := name
	if o.Quick {
		key += "#quick"
	}
	traceMu.Lock()
	defer traceMu.Unlock()
	if t, ok := traceCache[key]; ok {
		return t
	}
	t, err := ppcsim.NewTrace(name)
	if err != nil {
		panic(err)
	}
	if o.Quick {
		n := len(t.Refs) / 8
		if n < 4000 {
			n = 4000
		}
		t = t.Truncate(n)
	}
	traceCache[key] = t
	return t
}

// diskCounts returns the array sizes the appendix uses for the trace.
func diskCounts(name string) []int {
	switch name {
	case "synth":
		return []int{1, 2, 3, 4}
	case "dinero", "cscope1", "postgres-join", "xds":
		return []int{1, 2, 3, 4, 5, 6}
	default:
		return []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16}
	}
}

// run executes a single configuration, panicking on simulator errors
// (they indicate bugs, not bad input).
func run(opts ppcsim.Options) ppcsim.Result {
	r, err := ppcsim.Run(opts)
	if err != nil {
		panic(err)
	}
	return r
}

// runParallel evaluates configs concurrently and returns results in
// order. The simulator is single-threaded per run; experiments are
// embarrassingly parallel across configurations.
func runParallel(cfgs []ppcsim.Options) []ppcsim.Result {
	out := make([]ppcsim.Result, len(cfgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4)
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg ppcsim.Options) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = run(cfg)
		}(i, cfg)
	}
	wg.Wait()
	return out
}

// revAggBest picks reverse aggressive's parameters to minimize elapsed
// time, as the paper's baseline tables do.
func revAggBest(o *Options, opts ppcsim.Options) ppcsim.Result {
	var cfgs []ppcsim.Options
	for _, f := range o.estimates() {
		for _, b := range o.batches() {
			c := opts
			c.Algorithm = ppcsim.ReverseAggressive
			c.FetchEstimate = f
			c.BatchSize = b
			cfgs = append(cfgs, c)
		}
	}
	results := runParallel(cfgs)
	best := results[0]
	for _, r := range results[1:] {
		if r.ElapsedSec < best.ElapsedSec {
			best = r
		}
	}
	return best
}

// algSeries holds one algorithm's results across disk counts.
type algSeries struct {
	name string
	res  map[int]ppcsim.Result
}

// appendixTable renders results in the layout of the paper's appendix:
// one metrics block per algorithm, one column per array size.
func appendixTable(title string, disks []int, series []algSeries) *report.Table {
	t := &report.Table{Title: title}
	t.Columns = append(t.Columns, "Metric")
	for _, d := range disks {
		t.Columns = append(t.Columns, fmt.Sprintf("%dd", d))
	}
	metric := func(name string, get func(ppcsim.Result) string, s algSeries) {
		row := []string{name}
		for _, d := range disks {
			row = append(row, get(s.res[d]))
		}
		t.AddRow(row...)
	}
	for _, s := range series {
		head := []string{"-- " + s.name + " --"}
		for range disks {
			head = append(head, "")
		}
		t.AddRow(head...)
		metric("fetches", func(r ppcsim.Result) string { return report.I(r.Fetches) }, s)
		metric("driver time (sec)", func(r ppcsim.Result) string { return report.F(r.DriverTimeSec) }, s)
		metric("stall time (sec)", func(r ppcsim.Result) string { return report.F(r.StallTimeSec) }, s)
		metric("elapsed time (sec)", func(r ppcsim.Result) string { return report.F(r.ElapsedSec) }, s)
		metric("avg fetch time (msec)", func(r ppcsim.Result) string { return report.F(r.AvgFetchMs) }, s)
		metric("avg disk utilization", func(r ppcsim.Result) string { return report.F2(r.AvgUtilization) }, s)
	}
	return t
}

// renderFigure writes the figure to the text output and, when SVGDir is
// set, to <SVGDir>/<id>.svg.
func renderFigure(o *Options, id string, f *report.Figure) {
	f.Render(o.Out)
	if o.SVGDir == "" {
		return
	}
	path := filepath.Join(o.SVGDir, id+".svg")
	file, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(o.Out, "note: could not write %s: %v\n\n", path, err)
		return
	}
	defer file.Close()
	if err := f.RenderSVG(file); err != nil {
		fmt.Fprintf(o.Out, "note: could not render %s: %v\n\n", path, err)
	}
}

// breakdownFigure renders the paper's stacked-bar elapsed-time figures:
// for each array size, one bar per algorithm split into cpu, driver, and
// stall components.
func breakdownFigure(title string, disks []int, series []algSeries) *report.Figure {
	f := &report.Figure{
		Title:    title,
		SegNames: []string{"cpu", "driver", "stall"},
		Unit:     "s",
	}
	for _, d := range disks {
		for _, s := range series {
			r := s.res[d]
			f.Add(fmt.Sprintf("%2dd %-9s", d, abbrev(s.name)),
				r.ComputeSec, r.DriverTimeSec, r.StallTimeSec)
		}
	}
	return f
}

func abbrev(name string) string {
	switch name {
	case "demand":
		return "demand"
	case "fixed-horizon":
		return "fixed hor"
	case "aggressive":
		return "aggr"
	case "reverse-aggressive":
		return "rev aggr"
	case "forestall":
		return "forestall"
	}
	return name
}

// collect runs one algorithm across disk counts.
func collect(o *Options, traceName string, alg ppcsim.Algorithm, disks []int, mutate func(*ppcsim.Options)) algSeries {
	tr := getTrace(o, traceName)
	cfgs := make([]ppcsim.Options, len(disks))
	for i, d := range disks {
		cfg := ppcsim.Options{Trace: tr, Algorithm: alg, Disks: d}
		if mutate != nil {
			mutate(&cfg)
		}
		cfgs[i] = cfg
	}
	res := runParallel(cfgs)
	s := algSeries{name: string(alg), res: map[int]ppcsim.Result{}}
	for i, d := range disks {
		s.res[d] = res[i]
	}
	return s
}

// collectRevAggBest runs the best-parameter reverse aggressive across
// disk counts.
func collectRevAggBest(o *Options, traceName string, disks []int, mutate func(*ppcsim.Options)) algSeries {
	tr := getTrace(o, traceName)
	s := algSeries{name: string(ppcsim.ReverseAggressive), res: map[int]ppcsim.Result{}}
	for _, d := range disks {
		cfg := ppcsim.Options{Trace: tr, Disks: d}
		if mutate != nil {
			mutate(&cfg)
		}
		s.res[d] = revAggBest(o, cfg)
	}
	return s
}

// sortedDisks returns the keys of a series in ascending order.
func sortedDisks(s algSeries) []int {
	var ds []int
	for d := range s.res {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	return ds
}
