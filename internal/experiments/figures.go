package experiments

import (
	"fmt"

	"ppcsim"
	"ppcsim/internal/report"
)

// Table2 cross-validates the two disk models on the xds and synth traces,
// standing in for the paper's UW/CMU simulator comparison: elapsed times
// for fixed horizon and aggressive should agree closely, with remaining
// differences explained by the drive models.
func Table2(o *Options) error {
	for _, name := range []string{"xds", "synth"} {
		disks := []int{1, 2, 3, 4}
		if name == "xds" {
			disks = []int{1, 2, 3, 4, 5}
		}
		t := &report.Table{
			Title:   fmt.Sprintf("%s elapsed times (secs): full HP 97560 model vs simple fixed-latency model", name),
			Columns: []string{"disks", "F.H. full", "Agg. full", "F.H. simple", "Agg. simple"},
		}
		for _, d := range disks {
			tr := getTrace(o, name)
			fhF := run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.FixedHorizon, Disks: d})
			agF := run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: d})
			fhS := run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.FixedHorizon, Disks: d, SimpleDiskModel: true})
			agS := run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: d, SimpleDiskModel: true})
			t.AddRow(fmt.Sprintf("%d", d),
				report.F(fhF.ElapsedSec), report.F(agF.ElapsedSec),
				report.F(fhS.ElapsedSec), report.F(agS.ElapsedSec))
		}
		t.Notes = append(t.Notes,
			"the paper cross-validated UW (HP 97560) and CMU (IBM Lightning) simulators; we compare our two drive models the same way")
		t.Render(o.Out)
	}
	return nil
}

// Table3 prints the trace summary data.
func Table3(o *Options) error {
	t := &report.Table{
		Title:   "Trace summary data",
		Columns: []string{"trace", "reads", "distinct blocks", "compute time (sec)"},
	}
	for _, name := range ppcsim.TraceNames {
		st := getTrace(o, name).Stats()
		t.AddRow(name, fmt.Sprintf("%d", st.Reads), fmt.Sprintf("%d", st.DistinctBlocks), report.F(st.ComputeSec))
	}
	if o.Quick {
		t.Notes = append(t.Notes, "quick mode truncates traces; full mode matches the paper's Table 3 exactly")
	}
	t.Notes = append(t.Notes,
		"postgres compute totals follow the paper's appendix tables (join 79.2s, select 11.5s); Table 3 prints the pair swapped")
	t.Render(o.Out)
	return nil
}

// Fig2 reproduces Figure 2: optimal demand fetching and the three
// prefetching algorithms on postgres-select across 1–16 disks.
func Fig2(o *Options) error {
	disks := diskCounts("postgres-select")
	series := []algSeries{
		collect(o, "postgres-select", ppcsim.Demand, disks, nil),
		collect(o, "postgres-select", ppcsim.FixedHorizon, disks, nil),
		collect(o, "postgres-select", ppcsim.Aggressive, disks, nil),
		collectRevAggBest(o, "postgres-select", disks, nil),
	}
	renderFigure(o, "fig2", breakdownFigure("Performance on the postgres-select trace", disks, series))
	appendixTable("postgres-select elapsed-time breakdown", disks, series).Render(o.Out)
	return nil
}

// Fig3 reproduces Figure 3: synth and cscope1 with the three prefetching
// algorithms on 1–4 disks.
func Fig3(o *Options) error {
	for _, name := range []string{"synth", "cscope1"} {
		disks := []int{1, 2, 3, 4}
		series := []algSeries{
			collect(o, name, ppcsim.FixedHorizon, disks, nil),
			collect(o, name, ppcsim.Aggressive, disks, nil),
			collectRevAggBest(o, name, disks, nil),
		}
		renderFigure(o, "fig3-"+name, breakdownFigure(fmt.Sprintf("Performance on the %s trace", name), disks, series))
		appendixTable(fmt.Sprintf("%s detail", name), disks, series).Render(o.Out)
	}
	return nil
}

// Table4 reproduces Table 4: disk utilization on postgres-select.
func Table4(o *Options) error {
	disks := diskCounts("postgres-select")
	series := []algSeries{
		collect(o, "postgres-select", ppcsim.Demand, disks, nil),
		collect(o, "postgres-select", ppcsim.FixedHorizon, disks, nil),
		collect(o, "postgres-select", ppcsim.Aggressive, disks, nil),
		collectRevAggBest(o, "postgres-select", disks, nil),
	}
	t := &report.Table{
		Title:   "Disk utilization on the postgres-select trace",
		Columns: []string{"disks", "demand", "fixed horizon", "aggressive", "reverse aggressive"},
	}
	for _, d := range disks {
		t.AddRow(fmt.Sprintf("%d", d),
			report.F2(series[0].res[d].AvgUtilization),
			report.F2(series[1].res[d].AvgUtilization),
			report.F2(series[2].res[d].AvgUtilization),
			report.F2(series[3].res[d].AvgUtilization))
	}
	t.Render(o.Out)
	return nil
}

// Fig4 reproduces Figure 4: the ld trace, 1–16 disks.
func Fig4(o *Options) error {
	disks := diskCounts("ld")
	series := []algSeries{
		collect(o, "ld", ppcsim.FixedHorizon, disks, nil),
		collect(o, "ld", ppcsim.Aggressive, disks, nil),
		collectRevAggBest(o, "ld", disks, nil),
	}
	renderFigure(o, "fig4", breakdownFigure("Performance on the ld trace", disks, series))
	appendixTable("ld detail", disks, series).Render(o.Out)
	return nil
}

// Fig5 reproduces Figure 5: the cscope3 trace, where reverse aggressive's
// fixed fetch-time estimate conflicts with bursty compute times.
func Fig5(o *Options) error {
	disks := []int{1, 2, 3, 4, 5, 6, 7, 8}
	series := []algSeries{
		collect(o, "cscope3", ppcsim.FixedHorizon, disks, nil),
		collect(o, "cscope3", ppcsim.Aggressive, disks, nil),
		collectRevAggBest(o, "cscope3", disks, nil),
	}
	renderFigure(o, "fig5", breakdownFigure("Performance on the cscope3 trace", disks, series))
	appendixTable("cscope3 detail", disks, series).Render(o.Out)
	return nil
}

// Table5 reproduces Table 5: the percentage improvement of CSCAN over
// FCFS on postgres-select.
func Table5(o *Options) error {
	disks := diskCounts("postgres-select")
	t := &report.Table{
		Title:   "Percentage improvement of CSCAN over FCFS on the postgres-select trace",
		Columns: []string{"disks", "fixed horizon", "aggressive", "reverse aggressive"},
	}
	algs := []ppcsim.Algorithm{ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.ReverseAggressive}
	for _, d := range disks {
		row := []string{fmt.Sprintf("%d", d)}
		for _, alg := range algs {
			var cs, fc ppcsim.Result
			if alg == ppcsim.ReverseAggressive {
				cs = revAggBest(o, ppcsim.Options{Trace: getTrace(o, "postgres-select"), Disks: d})
				fc = revAggBest(o, ppcsim.Options{Trace: getTrace(o, "postgres-select"), Disks: d, Scheduler: ppcsim.FCFS})
			} else {
				cs = run(ppcsim.Options{Trace: getTrace(o, "postgres-select"), Algorithm: alg, Disks: d})
				fc = run(ppcsim.Options{Trace: getTrace(o, "postgres-select"), Algorithm: alg, Disks: d, Scheduler: ppcsim.FCFS})
			}
			imp := (fc.ElapsedSec - cs.ElapsedSec) / fc.ElapsedSec * 100
			row = append(row, fmt.Sprintf("%.2f", imp))
		}
		t.AddRow(row...)
	}
	t.Render(o.Out)
	return nil
}

// Table7 reproduces Table 7: fixed horizon's elapsed time relative to
// aggressive (percentage difference) as a function of cache size and
// array size on the glimpse trace. Positive numbers mean fixed horizon is
// slower.
func Table7(o *Options) error {
	disks := []int{1, 2, 4, 8, 16}
	caches := []int{640, 1280, 1920}
	t := &report.Table{
		Title:   "Fixed horizon relative to aggressive (% elapsed-time difference) on glimpse",
		Columns: []string{"cache size"},
	}
	for _, d := range disks {
		t.Columns = append(t.Columns, fmt.Sprintf("%d disks", d))
	}
	for _, k := range caches {
		row := []string{fmt.Sprintf("%d", k)}
		for _, d := range disks {
			fh := run(ppcsim.Options{Trace: getTrace(o, "glimpse"), Algorithm: ppcsim.FixedHorizon, Disks: d, CacheBlocks: k})
			ag := run(ppcsim.Options{Trace: getTrace(o, "glimpse"), Algorithm: ppcsim.Aggressive, Disks: d, CacheBlocks: k})
			row = append(row, fmt.Sprintf("%.1f", (fh.ElapsedSec-ag.ElapsedSec)/ag.ElapsedSec*100))
		}
		t.AddRow(row...)
	}
	t.Render(o.Out)
	return nil
}

// Fig8 reproduces Figure 8: forestall against fixed horizon and
// aggressive on synth and xds.
func Fig8(o *Options) error {
	for _, spec := range []struct {
		name  string
		disks []int
	}{
		{"synth", []int{1, 2, 3, 4}},
		{"xds", []int{1, 2, 3, 4, 5, 6}},
	} {
		series := []algSeries{
			collect(o, spec.name, ppcsim.FixedHorizon, spec.disks, nil),
			collect(o, spec.name, ppcsim.Aggressive, spec.disks, nil),
			collect(o, spec.name, ppcsim.Forestall, spec.disks, nil),
		}
		renderFigure(o, "fig8-"+spec.name, breakdownFigure(fmt.Sprintf("Performance on the %s trace (with forestall)", spec.name), spec.disks, series))
		appendixTable(fmt.Sprintf("%s detail", spec.name), spec.disks, series).Render(o.Out)
	}
	return nil
}

// Fig9 reproduces Figure 9: forestall on cscope2, 1–16 disks.
func Fig9(o *Options) error {
	disks := diskCounts("cscope2")
	series := []algSeries{
		collect(o, "cscope2", ppcsim.FixedHorizon, disks, nil),
		collect(o, "cscope2", ppcsim.Aggressive, disks, nil),
		collect(o, "cscope2", ppcsim.Forestall, disks, nil),
	}
	renderFigure(o, "fig9", breakdownFigure("Performance on the cscope2 trace (with forestall)", disks, series))
	appendixTable("cscope2 detail", disks, series).Render(o.Out)
	return nil
}

// Fig10 reproduces Figure 10: forestall on glimpse, 1–16 disks.
func Fig10(o *Options) error {
	disks := diskCounts("glimpse")
	series := []algSeries{
		collect(o, "glimpse", ppcsim.FixedHorizon, disks, nil),
		collect(o, "glimpse", ppcsim.Aggressive, disks, nil),
		collect(o, "glimpse", ppcsim.Forestall, disks, nil),
	}
	renderFigure(o, "fig10", breakdownFigure("Performance on the glimpse trace (with forestall)", disks, series))
	appendixTable("glimpse detail", disks, series).Render(o.Out)
	return nil
}

// Table8 reproduces Table 8: forestall's disk utilization on
// postgres-select.
func Table8(o *Options) error {
	disks := diskCounts("postgres-select")
	s := collect(o, "postgres-select", ppcsim.Forestall, disks, nil)
	t := &report.Table{
		Title:   "Utilization of disks by forestall on the postgres-select trace",
		Columns: []string{"disks", "util."},
	}
	for _, d := range disks {
		t.AddRow(fmt.Sprintf("%d", d), report.F2(s.res[d].AvgUtilization))
	}
	t.Render(o.Out)
	return nil
}
