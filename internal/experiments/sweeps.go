package experiments

import (
	"fmt"

	"ppcsim"
	"ppcsim/internal/report"
)

// Fig6 reproduces Figure 6: aggressive's elapsed time on cscope2 as a
// function of batch size, for 1–5 disks.
func Fig6(o *Options) error {
	batches := []int{4, 8, 16, 40, 80, 160, 320, 640, 1280}
	disks := []int{1, 2, 3, 4, 5}
	t := &report.Table{
		Title:   "Aggressive elapsed time (secs) on cscope2 vs batch size",
		Columns: []string{"batch"},
	}
	for _, d := range disks {
		t.Columns = append(t.Columns, fmt.Sprintf("%dd", d))
	}
	tr := getTrace(o, "cscope2")
	for _, b := range batches {
		var cfgs []ppcsim.Options
		for _, d := range disks {
			cfgs = append(cfgs, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: d, BatchSize: b})
		}
		res := runParallel(cfgs)
		row := []string{fmt.Sprintf("%d", b)}
		for _, r := range res {
			row = append(row, report.F(r.ElapsedSec))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "performance first improves with batch size (better scheduling), then degrades (out-of-order fetching, early replacement)")
	t.Render(o.Out)
	return nil
}

// Fig7 reproduces Figure 7: fixed horizon's elapsed time on cscope1 and
// cscope2 as a function of the prefetch horizon, for 1–3 disks.
func Fig7(o *Options) error {
	horizons := []int{16, 32, 64, 128, 256, 512, 1024, 2048}
	disks := []int{1, 2, 3}
	for _, name := range []string{"cscope1", "cscope2"} {
		t := &report.Table{
			Title:   fmt.Sprintf("Fixed horizon elapsed time (secs) on %s vs horizon H", name),
			Columns: []string{"H"},
		}
		for _, d := range disks {
			t.Columns = append(t.Columns, fmt.Sprintf("%dd", d))
		}
		tr := getTrace(o, name)
		for _, h := range horizons {
			var cfgs []ppcsim.Options
			for _, d := range disks {
				cfgs = append(cfgs, ppcsim.Options{Trace: tr, Algorithm: ppcsim.FixedHorizon, Disks: d, Horizon: h})
			}
			res := runParallel(cfgs)
			row := []string{fmt.Sprintf("%d", h)}
			for _, r := range res {
				row = append(row, report.F(r.ElapsedSec))
			}
			t.AddRow(row...)
		}
		t.Render(o.Out)
	}
	return nil
}

// AppendixE sweeps aggressive's batch size across traces, reproducing the
// appendix-E tables (elapsed times shown; the full per-metric data is in
// appendix A format for the baseline batch).
func AppendixE(o *Options) error {
	batches := []int{4, 8, 16, 40, 80, 160}
	names := []string{"dinero", "cscope1", "cscope2", "cscope3", "glimpse", "ld", "postgres-join", "postgres-select", "xds"}
	if o.Quick {
		names = []string{"cscope1", "ld"}
	}
	for _, name := range names {
		disks := diskCounts(name)
		if len(disks) > 6 {
			disks = disks[:6]
		}
		t := &report.Table{
			Title:   fmt.Sprintf("Aggressive elapsed time (secs) on %s as a function of batch size", name),
			Columns: []string{"batch"},
		}
		for _, d := range disks {
			t.Columns = append(t.Columns, fmt.Sprintf("%dd", d))
		}
		tr := getTrace(o, name)
		for _, b := range batches {
			var cfgs []ppcsim.Options
			for _, d := range disks {
				cfgs = append(cfgs, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: d, BatchSize: b})
			}
			res := runParallel(cfgs)
			row := []string{fmt.Sprintf("%d", b)}
			for _, r := range res {
				row = append(row, report.F(r.ElapsedSec))
			}
			t.AddRow(row...)
		}
		t.Render(o.Out)
	}
	return nil
}

// AppendixF sweeps reverse aggressive's fetch-time estimate and batch
// size, reproducing the appendix-F elapsed-time grids.
func AppendixF(o *Options) error {
	estimates := []float64{4, 8, 16, 32, 64, 128}
	batches := []int{4, 8, 16, 40, 80, 160}
	names := []string{"dinero", "cscope1", "cscope2", "cscope3", "glimpse", "ld", "postgres-join", "postgres-select", "xds", "synth"}
	if o.Quick {
		names = []string{"cscope1", "postgres-select"}
		estimates = []float64{8, 32, 128}
		batches = []int{8, 40, 160}
	}
	for _, name := range names {
		disks := diskCounts(name)
		if len(disks) > 6 {
			disks = disks[:6]
		}
		tr := getTrace(o, name)
		for _, f := range estimates {
			t := &report.Table{
				Title:   fmt.Sprintf("Reverse aggressive elapsed time (secs) on %s, fetch time estimate %g", name, f),
				Columns: []string{"batch"},
			}
			for _, d := range disks {
				t.Columns = append(t.Columns, fmt.Sprintf("%dd", d))
			}
			for _, b := range batches {
				var cfgs []ppcsim.Options
				for _, d := range disks {
					cfgs = append(cfgs, ppcsim.Options{Trace: tr, Algorithm: ppcsim.ReverseAggressive, Disks: d, FetchEstimate: f, BatchSize: b})
				}
				res := runParallel(cfgs)
				row := []string{fmt.Sprintf("%d", b)}
				for _, r := range res {
					row = append(row, report.F(r.ElapsedSec))
				}
				t.AddRow(row...)
			}
			t.Render(o.Out)
		}
	}
	return nil
}

// AppendixG sweeps fixed horizon's prefetch horizon, reproducing the
// appendix-G tables.
func AppendixG(o *Options) error {
	horizons := []int{16, 32, 64, 128, 256, 512, 1024, 2048}
	names := []string{"dinero", "cscope1", "cscope2", "postgres-select"}
	if o.Quick {
		names = []string{"cscope1"}
	}
	for _, name := range names {
		disks := diskCounts(name)
		if len(disks) > 6 {
			disks = disks[:6]
		}
		tr := getTrace(o, name)
		var series []algSeries
		for _, h := range horizons {
			s := algSeries{name: fmt.Sprintf("horizon %d", h), res: map[int]ppcsim.Result{}}
			var cfgs []ppcsim.Options
			for _, d := range disks {
				cfgs = append(cfgs, ppcsim.Options{Trace: tr, Algorithm: ppcsim.FixedHorizon, Disks: d, Horizon: h})
			}
			res := runParallel(cfgs)
			for i, d := range disks {
				s.res[d] = res[i]
			}
			series = append(series, s)
		}
		appendixTable(fmt.Sprintf("Fixed horizon on %s as a function of the horizon", name), disks, series).Render(o.Out)
	}
	return nil
}

// AppendixH runs forestall with fixed fetch-time estimates, reproducing
// the appendix-H tables.
func AppendixH(o *Options) error {
	fixed := []float64{2, 4, 8, 15, 30, 60}
	names := []string{"dinero", "cscope1", "cscope2", "glimpse", "ld", "postgres-select"}
	if o.Quick {
		names = []string{"cscope1"}
		fixed = []float64{2, 15, 60}
	}
	for _, name := range names {
		disks := diskCounts(name)
		if len(disks) > 6 {
			disks = disks[:6]
		}
		tr := getTrace(o, name)
		var series []algSeries
		// Dynamic estimation first, for reference.
		dyn := collect(o, name, ppcsim.Forestall, disks, nil)
		dyn.name = "forestall (dynamic F)"
		series = append(series, dyn)
		for _, f := range fixed {
			s := algSeries{name: fmt.Sprintf("forestall (F'=%g)", f), res: map[int]ppcsim.Result{}}
			var cfgs []ppcsim.Options
			for _, d := range disks {
				cfgs = append(cfgs, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: d, ForestallFixedF: f})
			}
			res := runParallel(cfgs)
			for i, d := range disks {
				s.res[d] = res[i]
			}
			series = append(series, s)
		}
		appendixTable(fmt.Sprintf("Forestall on %s with fixed fetch time estimates", name), disks, series).Render(o.Out)
	}
	return nil
}
