package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestRegistryComplete checks every paper artifact has an experiment.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table2", "table3", "fig2", "fig3", "table4", "fig4", "fig5",
		"table5", "fig6", "fig7", "table7", "fig8", "fig9", "fig10",
		"table8", "appA", "appB", "appC", "appD", "appE", "appF", "appG", "appH",
		"ext-lru", "ext-hints", "ext-writes", "ext-multi", "lookahead",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%s) not found", id)
		}
	}
	if _, ok := ByID("bogus"); ok {
		t.Error("ByID(bogus) should not resolve")
	}
}

// TestEveryExperimentQuick runs every experiment in quick mode and checks
// it produces table output without errors. This is the integration test
// for the whole harness.
func TestEveryExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take a few seconds each")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			o := &Options{Out: &buf, Quick: true}
			if err := e.Run(o); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "---") {
				t.Errorf("%s: no table rendered:\n%.400s", e.ID, out)
			}
		})
	}
}

// TestQuickTraceTruncation: quick mode shrinks traces but keeps names.
func TestQuickTraceTruncation(t *testing.T) {
	o := &Options{Quick: true}
	tr := getTrace(o, "synth")
	if len(tr.Refs) >= 100000 {
		t.Error("quick trace not truncated")
	}
	full := getTrace(&Options{}, "synth")
	if len(full.Refs) != 100000 {
		t.Error("full trace truncated")
	}
}

func TestDiskCounts(t *testing.T) {
	if got := diskCounts("synth"); len(got) != 4 {
		t.Errorf("synth disk counts: %v", got)
	}
	if got := diskCounts("cscope2"); got[len(got)-1] != 16 {
		t.Errorf("cscope2 disk counts: %v", got)
	}
	if got := diskCounts("xds"); len(got) != 6 {
		t.Errorf("xds disk counts: %v", got)
	}
}
