package experiments

import (
	"fmt"

	"ppcsim"
	"ppcsim/internal/report"
)

// The experiments in this file go beyond the paper's evaluation, covering
// the extensions its section 6 names as open: the value of
// better-than-LRU replacement in isolation, and sensitivity to
// incomplete or inaccurate hints.

// ExtLRU compares a conventional hint-less LRU cache against
// offline-optimal demand replacement and the hinted prefetchers,
// decomposing the benefit of hints into its two halves (better
// replacement, deep prefetching).
func ExtLRU(o *Options) error {
	names := []string{"dinero", "glimpse", "postgres-select", "synth"}
	if o.Quick {
		names = []string{"glimpse"}
	}
	for _, name := range names {
		disks := diskCounts(name)
		if len(disks) > 4 {
			disks = disks[:4]
		}
		series := []algSeries{
			collect(o, name, ppcsim.DemandLRU, disks, nil),
			collect(o, name, ppcsim.Demand, disks, nil),
			collect(o, name, ppcsim.Forestall, disks, nil),
		}
		t := appendixTable(fmt.Sprintf("LRU vs optimal replacement vs prefetching on %s", name), disks, series)
		t.Notes = append(t.Notes,
			"demand-lru = no hints at all; demand = hints used only for replacement; forestall = hints used for replacement and prefetching")
		t.Render(o.Out)
	}
	return nil
}

// ExtWrites interleaves write-behind traffic with the postgres-select
// read stream at increasing write ratios, showing writes never stall the
// process directly but steal disk time from prefetching — the tradeoff
// behind the paper's "write behind strategies can mask update latency".
func ExtWrites(o *Options) error {
	base := getTrace(o, "postgres-select")
	ratios := []int{0, 8, 4, 2, 1} // writes per N reads (0 = none, 1 = every read)
	algs := []ppcsim.Algorithm{ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.Forestall}
	const disks = 2
	t := &report.Table{
		Title:   fmt.Sprintf("Write-behind interference on postgres-select (%d disks): elapsed (secs)", disks),
		Columns: []string{"write ratio"},
	}
	for _, a := range algs {
		t.Columns = append(t.Columns, string(a))
	}
	for _, every := range ratios {
		tr := withWrites(base, every)
		label := "no writes"
		if every > 0 {
			label = fmt.Sprintf("1 write per %d reads", every)
		}
		row := []string{label}
		var cfgs []ppcsim.Options
		for _, a := range algs {
			cfgs = append(cfgs, ppcsim.Options{Trace: tr, Algorithm: a, Disks: disks})
		}
		for _, r := range runParallel(cfgs) {
			row = append(row, report.F(r.ElapsedSec))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "writes are issued write-behind: the process never waits for them, but the disks do")
	t.Render(o.Out)
	return nil
}

// withWrites interleaves one sequential log write per `every` reads.
func withWrites(base *ppcsim.Trace, every int) *ppcsim.Trace {
	if every <= 0 {
		return base
	}
	b := ppcsim.NewTraceBuilder(base.Name + "+writes")
	data := b.AddFile(base.NumBlocks())
	logf := b.AddFile(2048)
	logPos := 0
	for i, r := range base.Refs {
		b.Ref(data, int(r.Block), r.ComputeMs)
		if i%every == every-1 {
			b.WriteSequential(logf, logPos%2048, 1)
			logPos++
		}
	}
	b.CacheBlocks(base.CacheBlocks)
	b.PlaceByFile(base.PlaceByFile)
	tr, err := b.Build()
	if err != nil {
		panic(err)
	}
	return tr
}

// ExtMulti measures the paper's closing prediction about competing
// processes: a non-hinting process suffers more next to an aggressively
// prefetching neighbor than next to a fixed-horizon one, because
// aggressive places more load on the disks and the cache.
func ExtMulti(o *Options) error {
	mkHog := func() *ppcsim.Trace {
		b := ppcsim.NewTraceBuilder("hog").Seed(1)
		f := b.AddFile(1500)
		passes := 6
		if o.Quick {
			passes = 2
		}
		b.ComputeExp(1.0).Loop(f, passes)
		tr, err := b.Build()
		if err != nil {
			panic(err)
		}
		return tr
	}
	mkVictim := func() *ppcsim.Trace {
		b := ppcsim.NewTraceBuilder("victim").Seed(2)
		f := b.AddFile(800)
		n := 3000
		if o.Quick {
			n = 1000
		}
		b.ComputeExp(3.0).Zipf(f, n, 1.4)
		tr, err := b.Build()
		if err != nil {
			panic(err)
		}
		return tr
	}
	t := &report.Table{
		Title: "A non-hinting process next to a hinted prefetcher (2 disks, shared 1024-block cache)",
		Columns: []string{"neighbor", "victim elapsed (s)", "victim stall (s)",
			"neighbor elapsed (s)", "neighbor fetches"},
	}
	solo, err := ppcsim.RunMulti(ppcsim.MultiConfig{
		Processes:   []ppcsim.ProcessSpec{{Trace: mkVictim()}},
		Disks:       2,
		CacheBlocks: 1024,
	})
	if err != nil {
		return err
	}
	t.AddRow("(none: victim alone)", report.F(solo.Processes[0].ElapsedSec),
		report.F(solo.Processes[0].StallTimeSec), "-", "-")
	for _, alg := range []struct {
		name string
		spec ppcsim.ProcessSpec
	}{
		{"fixed-horizon", ppcsim.ProcessSpec{Algorithm: ppcsim.MultiFixedHorizon, Hinted: true}},
		{"aggressive", ppcsim.ProcessSpec{Algorithm: ppcsim.MultiAggressive, Hinted: true}},
	} {
		spec := alg.spec
		spec.Trace = mkHog()
		res, err := ppcsim.RunMulti(ppcsim.MultiConfig{
			Processes:   []ppcsim.ProcessSpec{spec, {Trace: mkVictim()}},
			Disks:       2,
			CacheBlocks: 1024,
		})
		if err != nil {
			return err
		}
		hog, victim := res.Processes[0], res.Processes[1]
		t.AddRow(alg.name, report.F(victim.ElapsedSec), report.F(victim.StallTimeSec),
			report.F(hog.ElapsedSec), report.I(hog.Fetches))
	}
	t.Notes = append(t.Notes,
		`paper section 6: "fixed horizon ... is likely to be least affected by unhinted accesses and to have the smallest impact on other executing processes"`)
	t.Render(o.Out)
	return nil
}

// ExtHints sweeps hint completeness and accuracy for the online
// algorithms, reporting elapsed time as hints degrade toward the
// hint-less baseline.
func ExtHints(o *Options) error {
	names := []string{"postgres-select", "cscope2"}
	if o.Quick {
		names = []string{"postgres-select"}
	}
	fractions := []float64{1.0, 0.75, 0.5, 0.25, 0.0}
	accuracies := []float64{1.0, 0.9, 0.7}
	algs := []ppcsim.Algorithm{ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.Forestall}
	const disks = 2
	for _, name := range names {
		tr := getTrace(o, name)
		t := &report.Table{
			Title:   fmt.Sprintf("Hint sensitivity on %s (%d disks): elapsed time (secs)", name, disks),
			Columns: []string{"hints"},
		}
		for _, a := range algs {
			t.Columns = append(t.Columns, string(a))
		}
		t.Columns = append(t.Columns, "demand-lru")
		lru := run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.DemandLRU, Disks: disks})
		addRow := func(label string, h *ppcsim.HintSpec) {
			row := []string{label}
			var cfgs []ppcsim.Options
			for _, a := range algs {
				cfgs = append(cfgs, ppcsim.Options{Trace: tr, Algorithm: a, Disks: disks, Hints: h})
			}
			for _, r := range runParallel(cfgs) {
				row = append(row, report.F(r.ElapsedSec))
			}
			row = append(row, report.F(lru.ElapsedSec))
			t.AddRow(row...)
		}
		for _, f := range fractions {
			addRow(fmt.Sprintf("%.0f%% disclosed", f*100), &ppcsim.HintSpec{Fraction: f, Accuracy: 1, Seed: 42})
		}
		for _, a := range accuracies[1:] {
			addRow(fmt.Sprintf("100%% disclosed, %.0f%% accurate", a*100), &ppcsim.HintSpec{Fraction: 1, Accuracy: a, Seed: 42})
		}
		t.Notes = append(t.Notes,
			"undisclosed references surface as demand misses; inaccurate hints waste fetches on blocks never used")
		t.Render(o.Out)
	}
	return nil
}
