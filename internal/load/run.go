package load

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"ppcsim"
)

// Runner executes one LoadSpec against one Target and assembles the
// capacity report. Zero-value optional fields select production
// defaults (wall clock, fresh consistency checker, silent progress).
type Runner struct {
	Spec   *LoadSpec
	Target Target
	// Clock drives the schedule; nil means the wall clock. Tests inject
	// FakeClock to run timelines instantly.
	Clock Clock
	// Check accumulates the response-body byte-identity invariant; nil
	// builds a fresh checker. Passing one checker to several runs
	// extends the invariant across them (the serving-invariant test
	// replays a phase against a warm server this way).
	Check *Consistency
	// Log receives one progress line per completed phase; nil discards.
	Log io.Writer
}

// Run executes the spec's phases in order. The request stream and
// arrival schedule are pure functions of the spec, so two Runs of one
// spec offer byte-identical load; only the measured responses differ.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	if err := r.Spec.Validate(); err != nil {
		return nil, err
	}
	gen, err := NewGenerator(r.Spec)
	if err != nil {
		return nil, err
	}
	clock := r.Clock
	if clock == nil {
		clock = RealClock()
	}
	check := r.Check
	if check == nil {
		check = NewConsistency()
	}
	rep := &Report{
		Version:    ReportVersion,
		Tool:       "ppc-load",
		Spec:       *r.Spec,
		Target:     r.Target.Name(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	if !r.Spec.SkipPrime {
		// Warm-up: touch every finite-pool key once, sequentially, so the
		// measured phases see the steady-state cache instead of a burst of
		// first-touch misses. Responses still feed the byte-identity
		// checker but no phase statistics.
		start := clock.Now()
		for _, req := range gen.PoolRequests() {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res := r.Target.Do(ctx, req.Body)
			if res.Status == 200 && req.Key != "" {
				check.Observe(req.Key, res.Body)
			}
		}
		if r.Log != nil {
			fmt.Fprintf(r.Log, "ppc-load: primed %d pool keys in %v\n",
				len(gen.PoolRequests()), clock.Now().Sub(start).Round(time.Millisecond))
		}
	}

	runPhase := func(name string, rps, seconds float64, mix Mix) (PhaseReport, error) {
		ph, err := r.phase(ctx, gen, clock, check, name, rps, seconds, mix, len(rep.Phases))
		if err != nil {
			return PhaseReport{}, err
		}
		rep.Phases = append(rep.Phases, ph)
		if r.Log != nil {
			t := ph.Total
			fmt.Fprintf(r.Log, "ppc-load: %-20s offered %8.1f  achieved %8.1f  429 %5.2f%%  p99 %8.3fms\n",
				ph.Name, ph.OfferedRPS, ph.AchievedRPS, 100*ph.Frac429, t.Latency.P99Ms)
		}
		return ph, nil
	}

	switch r.Spec.Mode {
	case "ramp":
		rmp := r.Spec.Ramp
		threshold := r.Spec.onset429Fraction()
		sat := &Saturation{Threshold: threshold}
		prev := 0.0
		for step := 0; ; step++ {
			rps := rmp.StartRPS + float64(step)*rmp.StepRPS
			if rps > rmp.MaxRPS*(1+1e-9) {
				break
			}
			ph, err := runPhase(fmt.Sprintf("ramp@%.0frps", rps), rps, rmp.StepSeconds, r.Spec.mix())
			if err != nil {
				return nil, err
			}
			if ph.Frac429 >= threshold {
				sat.Found = true
				sat.OnsetRPS = rps
				sat.MaxCleanRPS = prev
				sat.Frac429AtOnset = ph.Frac429
				break
			}
			prev = rps
		}
		rep.Saturation = sat
	case "sweep":
		sw := r.Spec.Sweep
		mixes := sw.Mixes
		if len(mixes) == 0 {
			mixes = []Mix{r.Spec.mix()}
		}
		for mi, mix := range mixes {
			for _, rps := range sw.RPS {
				name := fmt.Sprintf("sweep@%.0frps", rps)
				if len(mixes) > 1 {
					name = fmt.Sprintf("sweep m%d@%.0frps", mi, rps)
				}
				if _, err := runPhase(name, rps, sw.SecondsPerPoint, mix); err != nil {
					return nil, err
				}
			}
		}
	case "burst":
		b := r.Spec.Burst
		half := b.PeriodSeconds / 2
		for cyc := 0; cyc < b.Cycles; cyc++ {
			if _, err := runPhase(fmt.Sprintf("burst c%d low", cyc), b.LowRPS, half, r.Spec.mix()); err != nil {
				return nil, err
			}
			if _, err := runPhase(fmt.Sprintf("burst c%d high", cyc), b.HighRPS, half, r.Spec.mix()); err != nil {
				return nil, err
			}
		}
	}
	rep.Consistency = check.Report()
	rep.SLO = EvaluateSLO(r.Spec, rep.Phases, rep.Consistency)
	return rep, nil
}

// phase pre-generates one phase's request bodies, walks its arrival
// timeline open-loop, waits for every in-flight response, and snapshots
// the collector. Pre-generation keeps body synthesis off the dispatch
// path, so arrival instants measure the server, not the generator.
func (r *Runner) phase(ctx context.Context, gen *Generator, clock Clock, check *Consistency, name string, rps, seconds float64, mix Mix, phaseIdx int) (PhaseReport, error) {
	if err := ctx.Err(); err != nil {
		return PhaseReport{}, err
	}
	nominal := time.Duration(seconds * float64(time.Second))
	// The arrival schedule and the bodies draw from separate seeded
	// streams so body sizes never perturb arrival times across spec
	// changes; the timeline stream is keyed by phase ordinal.
	tlRng := rand.New(rand.NewSource(r.Spec.Seed*1_000_003 + int64(phaseIdx) + 1))
	tl := NewTimeline(rps, nominal, r.Spec.jitterFraction(), tlRng)
	if len(tl) > maxPhaseRequests {
		return PhaseReport{}, &ppcsim.ConfigError{
			Field:  "LoadSpec",
			Reason: fmt.Sprintf("phase %s needs %d pre-generated requests (max %d); lower rps or the phase duration", name, len(tl), maxPhaseRequests),
		}
	}
	reqs := make([]GenRequest, len(tl))
	for i := range reqs {
		reqs[i] = gen.Next(mix)
	}
	collect := NewCollector(check)
	ex := NewExecutor(r.Target, clock, collect, r.Spec.maxInFlight())
	start := clock.Now()
	dispatched := runTimeline(ctx, clock, tl, reqs, nominal, func(i int, req GenRequest) {
		ex.Dispatch(ctx, req)
	})
	ex.Wait()
	wall := clock.Now().Sub(start)
	if err := ctx.Err(); err != nil {
		return PhaseReport{}, err
	}
	ph := PhaseReport{
		Name:       name,
		OfferedRPS: rps,
		DurationMs: float64(wall) / float64(time.Millisecond),
		Mix:        mix,
		Frac429:    collect.Frac429(),
		Classes:    collect.ByClass(),
		Total:      collect.Total(),
	}
	if wall > 0 {
		ph.AchievedRPS = float64(dispatched) / wall.Seconds()
	}
	return ph, nil
}
