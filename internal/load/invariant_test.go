package load

import (
	"context"
	"testing"

	"ppcsim/internal/serve"
)

// TestServingInvariantWarmReplay is the serving-invariant satellite:
// replaying the identical load phase against a warm server must yield
// a cache-hit ratio at least the cold phase's, and every 200 body must
// be byte-identical per canonical key across both runs (one shared
// Consistency checker spans them). Runs real simulations through the
// full v1 handler path; the race detector covers the executor,
// collector, and server concurrently.
func TestServingInvariantWarmReplay(t *testing.T) {
	srv := serve.New(serve.Config{})
	defer srv.Close()
	tgt := NewHandlerTarget("invariant", srv.Handler())

	spec := &LoadSpec{
		Seed:      21,
		Mode:      "sweep",
		ColdRefs:  48,
		SkipPrime: true, // the cold run must pay first-touch misses itself
		Sweep:     &SweepSpec{RPS: []float64{150}, SecondsPerPoint: 0.4},
	}
	check := NewConsistency()
	replay := func(name string) *Report {
		rep, err := (&Runner{Spec: spec, Target: tgt, Check: check}).Run(context.Background())
		if err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
		return rep
	}

	cold := replay("cold")
	warm := replay("warm")

	ratio := func(rep *Report) float64 {
		var ok, hits int64
		for _, ph := range rep.Phases {
			ok += ph.Total.OK
			hits += ph.Total.CacheHits
		}
		if ok == 0 {
			t.Fatalf("no 200s in a replay run: %+v", rep.Phases)
		}
		return float64(hits) / float64(ok)
	}
	coldRatio, warmRatio := ratio(cold), ratio(warm)
	if warmRatio < coldRatio {
		t.Fatalf("warm hit ratio %.3f below cold %.3f", warmRatio, coldRatio)
	}
	// The warm run re-sends the cold run's cached-pool keys, whose
	// first touches missed in the cold run — strictly more hits now.
	if warmRatio <= coldRatio {
		t.Fatalf("warm hit ratio %.3f did not improve on cold %.3f; the cache is not retaining the pool", warmRatio, coldRatio)
	}

	// Byte identity per canonical key, across both runs.
	final := check.Report()
	if len(final.MismatchedKeys) != 0 {
		t.Fatalf("keys served non-identical bodies across replays: %v", final.MismatchedKeys)
	}
	if final.CheckedBodies == 0 || final.DistinctKeys == 0 {
		t.Fatalf("consistency checker saw nothing: %+v", final)
	}
	if warm.SLO == nil || !warm.SLO.Pass {
		t.Fatalf("warm replay verdict: %+v", warm.SLO)
	}

	// The two runs offered identical streams, so they sent identical
	// per-class counts — determinism observed end to end.
	for _, cl := range Classes {
		c1 := cold.Phases[0].Classes[string(cl)].Sent
		c2 := warm.Phases[0].Classes[string(cl)].Sent
		if c1 != c2 {
			t.Fatalf("class %s sent %d cold vs %d warm under one spec", cl, c1, c2)
		}
	}
}
