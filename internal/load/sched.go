package load

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Timeline is one phase's precomputed arrival schedule: monotone
// offsets from the phase start at which requests are dispatched,
// open-loop — an arrival is dispatched at its instant whether or not
// earlier requests have completed, which is what lets offered load
// exceed service capacity and expose the saturation point (a
// closed-loop driver would throttle itself and never find it).
type Timeline []time.Duration

// NewTimeline builds the deterministic arrival schedule for one phase:
// ceil(rps·duration) arrivals on a uniform grid of gap 1/rps, each
// jittered uniformly within [i·gap, i·gap + jitter·gap). jitter in
// [0,1] keeps the schedule monotone while breaking lockstep with any
// periodic behavior in the server. The rng is consumed once per
// arrival, in order.
func NewTimeline(rps float64, duration time.Duration, jitter float64, rng *rand.Rand) Timeline {
	gap := float64(time.Second) / rps
	n := int(float64(duration) / gap)
	if float64(n)*gap < float64(duration) {
		n++
	}
	tl := make(Timeline, n)
	for i := range tl {
		tl[i] = time.Duration(float64(i)*gap + jitter*gap*rng.Float64())
	}
	return tl
}

// JitterBound returns the half-open upper bound of arrival i's offset
// under the same parameters; the lower bound is i·gap. Tests assert
// every generated offset lies in [Lower, Upper).
func (tl Timeline) JitterBound(i int, rps, jitter float64) (lower, upper time.Duration) {
	gap := float64(time.Second) / rps
	return time.Duration(float64(i) * gap), time.Duration(float64(i)*gap + jitter*gap + 1)
}

// dispatchFunc sends one pre-generated request. It is invoked on the
// scheduler goroutine at the arrival instant and must not block on the
// request's completion (the executor hands the wait to a response
// goroutine).
type dispatchFunc func(i int, req GenRequest)

// runTimeline walks a phase's schedule on the given clock, dispatching
// reqs[i] at offset tl[i] from the phase start. It returns the phase's
// measured wall duration (dispatch of the last arrival relative to the
// phase start, plus the tail of the nominal duration) and the number of
// arrivals actually dispatched before ctx was canceled.
func runTimeline(ctx context.Context, clock Clock, tl Timeline, reqs []GenRequest, nominal time.Duration, dispatch dispatchFunc) (dispatched int) {
	start := clock.Now()
	for i, at := range tl {
		if ctx.Err() != nil {
			return i
		}
		if d := at - clock.Now().Sub(start); d > 0 {
			clock.Sleep(d)
		}
		dispatch(i, reqs[i])
	}
	// Hold the phase open to its nominal end so the last arrivals'
	// responses are attributed to this phase's wall window.
	if d := nominal - clock.Now().Sub(start); d > 0 {
		clock.Sleep(d)
	}
	return len(tl)
}

// Executor turns dispatches into bounded concurrent requests against a
// Target. Open-loop load must not block the scheduler, so each dispatch
// runs on its own goroutine; the in-flight cap bounds memory when the
// target is far past saturation, counting arrivals over the cap as
// shed instead of queueing them (queueing would close the loop).
type Executor struct {
	target  Target
	clock   Clock
	collect *Collector
	slots   chan struct{}
	wg      sync.WaitGroup
}

// NewExecutor builds an executor with the given in-flight cap.
func NewExecutor(target Target, clock Clock, collect *Collector, maxInFlight int) *Executor {
	return &Executor{
		target:  target,
		clock:   clock,
		collect: collect,
		slots:   make(chan struct{}, maxInFlight),
	}
}

// Dispatch sends one request without blocking the caller. If every
// in-flight slot is taken the request is shed and counted, preserving
// the open-loop arrival process with bounded memory.
func (e *Executor) Dispatch(ctx context.Context, req GenRequest) {
	select {
	case e.slots <- struct{}{}:
	default:
		e.collect.Shed(req.Class)
		return
	}
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer func() { <-e.slots }()
		start := e.clock.Now()
		res := e.target.Do(ctx, req.Body)
		e.collect.Record(req, res, e.clock.Now().Sub(start))
	}()
}

// Wait blocks until every dispatched request has completed.
func (e *Executor) Wait() { e.wg.Wait() }
