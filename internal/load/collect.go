package load

import (
	"crypto/sha256"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"ppcsim/internal/obs"
)

// LatencySummary is one request class's latency distribution in the
// capacity report, in milliseconds. Quantiles come from the shared
// log-bucketed obs.Histogram (~5% relative resolution), extended here
// to the tail percentile a saturation study cares about.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func summarize(h *obs.Histogram) LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		MeanMs: h.MeanMs(),
		P50Ms:  h.Quantile(0.50),
		P95Ms:  h.Quantile(0.95),
		P99Ms:  h.Quantile(0.99),
		P999Ms: h.Quantile(0.999),
		MaxMs:  h.Quantile(1),
	}
}

// ClassStats is one request class's phase outcome. Sent counts
// dispatched requests (shed arrivals never left the executor and are
// counted separately); OK is 2xx; Rejected is 429 backpressure;
// Timeouts combines server 504s with client-side deadlines.
type ClassStats struct {
	Sent            int64          `json:"sent"`
	OK              int64          `json:"ok"`
	CacheHits       int64          `json:"cache_hits"`
	Rejected        int64          `json:"rejected"`
	ClientErrors    int64          `json:"client_errors"`
	ServerErrors    int64          `json:"server_errors"`
	Timeouts        int64          `json:"timeouts"`
	TransportErrors int64          `json:"transport_errors"`
	Shed            int64          `json:"shed"`
	Latency         LatencySummary `json:"latency"`
}

// add accumulates counters (not latency) for phase totals.
func (a *ClassStats) add(b ClassStats) {
	a.Sent += b.Sent
	a.OK += b.OK
	a.CacheHits += b.CacheHits
	a.Rejected += b.Rejected
	a.ClientErrors += b.ClientErrors
	a.ServerErrors += b.ServerErrors
	a.Timeouts += b.Timeouts
	a.TransportErrors += b.TransportErrors
	a.Shed += b.Shed
}

// classAgg is the mutable accumulator behind one ClassStats.
type classAgg struct {
	stats ClassStats
	lat   obs.Histogram
}

// Collector aggregates one phase's outcomes per request class, plus a
// merged all-classes series. Safe for concurrent Record calls from the
// executor's response goroutines.
type Collector struct {
	mu      sync.Mutex
	classes map[Class]*classAgg //ppcvet:guardedby mu
	all     classAgg            //ppcvet:guardedby mu
	check   *Consistency
}

// NewCollector builds a phase collector. check may be nil to skip
// response-body consistency tracking; passing one shared Consistency
// across phases (and runs) extends the byte-identity check across them.
func NewCollector(check *Consistency) *Collector {
	classes := make(map[Class]*classAgg, len(Classes))
	for _, cl := range Classes {
		classes[cl] = &classAgg{}
	}
	return &Collector{classes: classes, check: check}
}

// Shed counts an arrival dropped at the in-flight cap.
func (c *Collector) Shed(class Class) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.classes[class].stats.Shed++
	c.all.stats.Shed++
}

// Record files one completed request.
func (c *Collector) Record(req GenRequest, res TargetResult, dur time.Duration) {
	if c.check != nil && res.Status == http.StatusOK && req.Key != "" {
		c.check.Observe(req.Key, res.Body)
	}
	ms := float64(dur) / float64(time.Millisecond)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, agg := range []*classAgg{c.classes[req.Class], &c.all} {
		agg.stats.Sent++
		switch {
		case res.Err != nil:
			if res.Timeout {
				agg.stats.Timeouts++
			} else {
				agg.stats.TransportErrors++
			}
			continue // no latency sample for a request with no response
		case res.Status >= 200 && res.Status < 300:
			agg.stats.OK++
			if res.CacheHit {
				agg.stats.CacheHits++
			}
		case res.Status == http.StatusTooManyRequests:
			agg.stats.Rejected++
		case res.Status == http.StatusGatewayTimeout:
			agg.stats.Timeouts++
		case res.Status >= 400 && res.Status < 500:
			agg.stats.ClientErrors++
		default:
			agg.stats.ServerErrors++
		}
		agg.lat.Observe(ms)
	}
}

// ByClass snapshots the per-class stats in report form (keys are class
// names; encoding/json emits them sorted).
func (c *Collector) ByClass() map[string]ClassStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]ClassStats, len(Classes))
	for _, cl := range Classes {
		agg := c.classes[cl]
		st := agg.stats
		st.Latency = summarize(&agg.lat)
		out[string(cl)] = st
	}
	return out
}

// Total snapshots the merged all-classes stats.
func (c *Collector) Total() ClassStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.all.stats
	st.Latency = summarize(&c.all.lat)
	return st
}

// Frac429 returns the phase's backpressure fraction: 429s over sent
// well-formed requests (malformed requests are rejected before the
// queue and would dilute the signal). Zero when nothing was sent.
func (c *Collector) Frac429() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sent, rejected int64
	for _, cl := range Classes {
		if cl == ClassMalformed {
			continue
		}
		sent += c.classes[cl].stats.Sent
		rejected += c.classes[cl].stats.Rejected
	}
	if sent == 0 {
		return 0
	}
	return float64(rejected) / float64(sent)
}

// Consistency tracks the byte-identity invariant the result cache
// promises: every 200 response for one canonical key is byte-identical,
// within a run and across runs that share the checker. The map is
// capped; once full, new keys pass through unchecked (repeat keys —
// the ones the invariant is about — are already present).
type Consistency struct {
	mu       sync.Mutex
	bodies   map[string][sha256.Size]byte //ppcvet:guardedby mu
	checked  int64                        //ppcvet:guardedby mu
	mismatch []string                     //ppcvet:guardedby mu
}

// consistencyMaxKeys bounds the tracked-key map (unique cold keys are
// unbounded over a long run).
const consistencyMaxKeys = 1 << 16

// NewConsistency builds an empty checker.
func NewConsistency() *Consistency {
	return &Consistency{bodies: make(map[string][sha256.Size]byte)}
}

// Observe files one 200 body for a key, recording a mismatch if the
// key was seen before with different bytes.
func (c *Consistency) Observe(key string, body []byte) {
	sum := sha256.Sum256(body)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.checked++
	prev, ok := c.bodies[key]
	if !ok {
		if len(c.bodies) < consistencyMaxKeys {
			c.bodies[key] = sum
		}
		return
	}
	if prev != sum && len(c.mismatch) < 16 {
		c.mismatch = append(c.mismatch, key)
	}
}

// Report summarizes the checker for the capacity report.
func (c *Consistency) Report() ConsistencyReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Strings(c.mismatch)
	return ConsistencyReport{
		CheckedBodies:  c.checked,
		DistinctKeys:   len(c.bodies),
		MismatchedKeys: append([]string(nil), c.mismatch...),
	}
}

// ConsistencyReport is the byte-identity section of the capacity
// report. A non-empty MismatchedKeys list fails the run's SLO verdict
// unconditionally: a cache serving different bytes for one key is a
// correctness bug, whatever the latency.
type ConsistencyReport struct {
	CheckedBodies  int64    `json:"checked_bodies"`
	DistinctKeys   int      `json:"distinct_keys"`
	MismatchedKeys []string `json:"mismatched_keys,omitempty"`
}

// String renders the one-line human form.
func (r ConsistencyReport) String() string {
	if len(r.MismatchedKeys) > 0 {
		return fmt.Sprintf("%d bodies over %d keys: %d MISMATCHED %v", r.CheckedBodies, r.DistinctKeys, len(r.MismatchedKeys), r.MismatchedKeys)
	}
	return fmt.Sprintf("%d bodies over %d keys: all byte-identical", r.CheckedBodies, r.DistinctKeys)
}
