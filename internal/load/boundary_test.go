package load

import (
	"context"
	"encoding/json"
	"testing"

	"ppcsim/internal/serve"
)

// TestBoundaryMixTable is the boundary-mix satellite: every malformed
// request class the generator emits must draw a 4xx with the v1
// {error:{code,field,message}} envelope, and none may consume a
// worker-pool slot (the server's simulation counter stays at zero).
func TestBoundaryMixTable(t *testing.T) {
	// A body limit below the spec's oversize knob, so the oversize kind
	// exercises the 413 path rather than the trace-size validator.
	srv := serve.New(serve.Config{Workers: 1, MaxBodyBytes: 4096})
	defer srv.Close()
	tgt := NewHandlerTarget("boundary", srv.Handler())

	spec := testSpec(1)
	spec.OversizeBytes = 8192
	gen, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		kind       string
		wantStatus int
		wantCode   serve.ErrorCode
	}{
		{"unknown_field", 400, serve.CodeInvalidRequest},
		{"truncated_columnar", 400, serve.CodeInvalidRequest},
		{"oversize", 413, serve.CodeBodyTooLarge},
		{"bad_algorithm", 400, serve.CodeInvalidRequest},
	}
	if len(cases) != len(MalformedKinds) {
		t.Fatalf("table covers %d kinds, generator emits %d — extend the table", len(cases), len(MalformedKinds))
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			res := tgt.Do(context.Background(), gen.MalformedBody(tc.kind))
			if res.Err != nil {
				t.Fatalf("transport error: %v", res.Err)
			}
			if res.Status != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", res.Status, tc.wantStatus, res.Body)
			}
			var env serve.ErrorEnvelope
			if err := json.Unmarshal(res.Body, &env); err != nil {
				t.Fatalf("response is not the v1 error envelope: %v (%s)", err, res.Body)
			}
			if env.Error.Code != tc.wantCode {
				t.Fatalf("code %q, want %q", env.Error.Code, tc.wantCode)
			}
			if env.Error.Message == "" {
				t.Fatal("empty error message")
			}
			if tc.kind != "oversize" && env.Error.Field == "" {
				t.Fatalf("validation rejection names no field: %+v", env.Error)
			}
		})
	}

	st := srv.Snapshot()
	if st.Simulations != 0 {
		t.Fatalf("malformed requests consumed %d worker-pool slots", st.Simulations)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("malformed requests left %d entries queued", st.QueueDepth)
	}
	if st.Requests == 0 {
		t.Fatal("server counted no requests; the table did not reach the handler")
	}

	// A well-formed request on the same server does run a simulation —
	// the counter works, so the zero above is meaningful.
	ok := gen.PoolRequests()[0]
	res := tgt.Do(context.Background(), ok.Body)
	if res.Status != 200 {
		t.Fatalf("control request failed: %d %s", res.Status, res.Body)
	}
	if got := srv.Snapshot().Simulations; got != 1 {
		t.Fatalf("control request ran %d simulations, want 1", got)
	}
}
