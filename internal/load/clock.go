package load

import (
	"sync"
	"time"
)

// Clock abstracts the scheduler's two time operations so tests can run
// dispatch timelines instantly and deterministically. The real clock is
// the wall clock; FakeClock advances only when slept on.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// realClock is the production clock.
type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// FakeClock is a manually advanced clock: Sleep moves time forward
// immediately instead of blocking, so a scheduler driven by it runs its
// whole timeline in microseconds while observing exactly the instants
// it would have observed in real time. Safe for concurrent use (the
// dispatch executor reads Now from response goroutines).
type FakeClock struct {
	mu  sync.Mutex
	now time.Time //ppcvet:guardedby mu
	// slept records every Sleep duration in call order, so tests can
	// assert the exact gap sequence the scheduler produced.
	slept []time.Duration //ppcvet:guardedby mu
}

// NewFakeClock starts a fake clock at an arbitrary fixed epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(1_000_000, 0)}
}

// Now returns the fake instant.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the clock by d without blocking. Negative durations
// advance nothing, matching time.Sleep.
func (c *FakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	c.slept = append(c.slept, d)
}

// Slept returns a copy of every Sleep duration seen so far.
func (c *FakeClock) Slept() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.slept...)
}
