package load

import (
	"bytes"
	"encoding/json"
	"testing"

	"ppcsim/internal/serve"
)

func testSpec(seed int64) *LoadSpec {
	return &LoadSpec{
		Seed:     seed,
		Mode:     "sweep",
		ColdRefs: 32,
		Sweep:    &SweepSpec{RPS: []float64{100}, SecondsPerPoint: 1},
	}
}

// TestGeneratorDeterminism replays one spec twice and asserts the two
// request streams are byte-identical — class, kind, key, and body — the
// property that makes a checked-in LOAD report a reproducible
// experiment. A different seed must diverge.
func TestGeneratorDeterminism(t *testing.T) {
	const n = 512
	g1, err := NewGenerator(testSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(testSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		a, b := g1.Next(DefaultMix), g2.Next(DefaultMix)
		if a.Class != b.Class || a.Kind != b.Kind || a.Key != b.Key || !bytes.Equal(a.Body, b.Body) {
			t.Fatalf("request %d diverged under one seed: %s/%s vs %s/%s", i, a.Class, a.Kind, b.Class, b.Kind)
		}
	}
	g3, err := NewGenerator(testSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	g1b, _ := NewGenerator(testSpec(9))
	for i := 0; i < n; i++ {
		a, b := g1b.Next(DefaultMix), g3.Next(DefaultMix)
		if a.Class != b.Class || !bytes.Equal(a.Body, b.Body) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("seeds 9 and 10 produced identical streams")
	}
}

// TestGeneratorBodiesParseAtTheBoundary feeds every well-formed
// generated body through the real v1 request parser and asserts the
// parser's canonical key matches the key the generator attached — the
// contract the consistency checker depends on.
func TestGeneratorBodiesParseAtTheBoundary(t *testing.T) {
	g, err := NewGenerator(testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Class]int{}
	for i := 0; i < 400; i++ {
		req := g.Next(DefaultMix)
		seen[req.Class]++
		if req.Class == ClassMalformed {
			if req.Key != "" {
				t.Fatalf("malformed request %d carries a key %q", i, req.Key)
			}
			continue
		}
		var sreq serve.Request
		dec := json.NewDecoder(bytes.NewReader(req.Body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sreq); err != nil {
			t.Fatalf("request %d (%s) does not decode: %v", i, req.Class, err)
		}
		if err := sreq.RunSpec.Validate(); err != nil {
			t.Fatalf("request %d (%s) invalid at the boundary: %v", i, req.Class, err)
		}
		if got := sreq.RunSpec.Key(); got != req.Key {
			t.Fatalf("request %d (%s): generator key %q, boundary key %q", i, req.Class, req.Key, got)
		}
	}
	for _, c := range Classes {
		if seen[c] == 0 {
			t.Errorf("class %s never drawn in 400 requests of DefaultMix", c)
		}
	}
}

// TestGeneratorClassFrequencies draws a long stream and checks each
// class lands within a generous band of its mix weight.
func TestGeneratorClassFrequencies(t *testing.T) {
	g, err := NewGenerator(testSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	counts := map[Class]int{}
	for i := 0; i < n; i++ {
		counts[g.Next(DefaultMix).Class]++
	}
	for _, c := range Classes {
		want := DefaultMix.Weight(c) / DefaultMix.total()
		got := float64(counts[c]) / n
		if got < want*0.6 || got > want*1.4+0.01 {
			t.Errorf("class %s frequency %.3f, want about %.3f", c, got, want)
		}
	}
}

// TestGeneratorUniqueColdKeys asserts cold and columnar requests never
// repeat a canonical key (each must be a guaranteed cache miss), while
// cached requests draw from a fixed pool.
func TestGeneratorUniqueColdKeys(t *testing.T) {
	g, err := NewGenerator(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	cold := map[string]bool{}
	cachedKeys := map[string]bool{}
	for i := 0; i < 1000; i++ {
		req := g.Next(DefaultMix)
		switch req.Class {
		case ClassCold, ClassColumnar:
			if cold[req.Key] {
				t.Fatalf("%s request repeated key %q", req.Class, req.Key)
			}
			cold[req.Key] = true
		case ClassCached:
			cachedKeys[req.Key] = true
		}
	}
	if len(cachedKeys) == 0 || len(cachedKeys) > 16 {
		t.Errorf("cached pool spans %d keys, want a small fixed pool", len(cachedKeys))
	}
}

// TestGeneratorSweepCycles asserts the sweep class cycles the whole
// grid before repeating, so the grid warms deterministically.
func TestGeneratorSweepCycles(t *testing.T) {
	g, err := NewGenerator(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	onlySweep := Mix{Sweep: 1}
	first := map[string]bool{}
	var order []string
	for len(order) < len(g.cells) {
		req := g.Next(onlySweep)
		if first[req.Key] {
			t.Fatalf("sweep repeated key %q before finishing the grid (%d of %d cells)", req.Key, len(order), len(g.cells))
		}
		first[req.Key] = true
		order = append(order, req.Key)
	}
	// One more full cycle must replay the same order.
	for i := range order {
		if got := g.Next(onlySweep).Key; got != order[i] {
			t.Fatalf("second sweep cycle diverged at %d: %q vs %q", i, got, order[i])
		}
	}
}

// TestPoolRequestsDeterministic pins the warm-up pass: a fixed,
// deterministic list covering the cached pool and the sweep grid, all
// well-formed with distinct keys.
func TestPoolRequestsDeterministic(t *testing.T) {
	g1, _ := NewGenerator(testSpec(1))
	g2, _ := NewGenerator(testSpec(99)) // pool is seed-independent
	p1, p2 := g1.PoolRequests(), g2.PoolRequests()
	if len(p1) != len(p2) || len(p1) == 0 {
		t.Fatalf("pool sizes %d vs %d", len(p1), len(p2))
	}
	keys := map[string]bool{}
	for i := range p1 {
		if p1[i].Key == "" || p1[i].Key != p2[i].Key || !bytes.Equal(p1[i].Body, p2[i].Body) {
			t.Fatalf("pool entry %d differs across generators", i)
		}
		if keys[p1[i].Key] {
			t.Fatalf("pool entry %d repeats key %q", i, p1[i].Key)
		}
		keys[p1[i].Key] = true
	}
}

// TestMalformedBodies asserts every malformed kind is emitted and has
// its intended shape (the boundary tests assert the server-side half).
func TestMalformedBodies(t *testing.T) {
	spec := testSpec(4)
	spec.OversizeBytes = 2048
	g, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 400; i++ {
		req := g.Next(Mix{Malformed: 1})
		seen[req.Kind] = true
	}
	for _, kind := range MalformedKinds {
		if !seen[kind] {
			t.Errorf("kind %s never drawn", kind)
		}
		body := g.MalformedBody(kind)
		if kind == "oversize" {
			if len(body) < spec.OversizeBytes {
				t.Errorf("oversize body is %d bytes, below the %d knob", len(body), spec.OversizeBytes)
			}
			continue
		}
		if !json.Valid(body) {
			t.Errorf("kind %s is not even JSON — the boundary must reject it later than the JSON layer", kind)
		}
	}
}
