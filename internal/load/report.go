package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"ppcsim"
)

// ReportVersion is the capacity-report schema version; bump it on any
// incompatible field change so downstream tooling fails loudly.
const ReportVersion = 1

// PhaseReport is one phase's measured outcome.
type PhaseReport struct {
	Name string `json:"name"`
	// OfferedRPS is the schedule's arrival rate; AchievedRPS is what was
	// actually dispatched per wall second (they diverge when the
	// in-flight cap sheds or the run is canceled mid-phase).
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	DurationMs  float64 `json:"duration_ms"`
	Mix         Mix     `json:"mix"`
	// Frac429 is rejected/sent over well-formed classes — the
	// backpressure signal ramp mode's onset detection reads.
	Frac429 float64               `json:"frac_429"`
	Classes map[string]ClassStats `json:"classes"`
	Total   ClassStats            `json:"total"`
}

// Saturation is ramp mode's finding: the offered RPS at which 429
// backpressure onset was declared, and the last step that ran clean.
type Saturation struct {
	Found bool `json:"found"`
	// OnsetRPS is the first step whose 429 fraction reached the
	// threshold; MaxCleanRPS is the step before it (0 if the very first
	// step saturated).
	OnsetRPS    float64 `json:"onset_rps,omitempty"`
	MaxCleanRPS float64 `json:"max_clean_rps,omitempty"`
	// Frac429AtOnset is the onset step's measured 429 fraction.
	Frac429AtOnset float64 `json:"frac_429_at_onset,omitempty"`
	// Threshold echoes the onset fraction the detection used.
	Threshold float64 `json:"threshold"`
}

// SLOViolation names one failed objective.
type SLOViolation struct {
	Phase   string  `json:"phase"`
	Class   string  `json:"class,omitempty"`
	Rule    string  `json:"rule"`
	Limit   float64 `json:"limit"`
	Actual  float64 `json:"actual"`
	Message string  `json:"message"`
}

// SLOResult is the run's verdict.
type SLOResult struct {
	Pass       bool           `json:"pass"`
	Violations []SLOViolation `json:"violations,omitempty"`
}

// Report is the LOAD_<n>.json capacity document — the serving analogue
// of ppc-bench's BENCH_<n>.json. The spec is embedded verbatim, so a
// checked-in report is a reproducible experiment: feed report.Spec back
// through ppc-load -spec and the request stream is byte-identical.
type Report struct {
	Version     int               `json:"version"`
	Tool        string            `json:"tool"`
	Spec        LoadSpec          `json:"spec"`
	Target      string            `json:"target"`
	GoVersion   string            `json:"go_version"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Phases      []PhaseReport     `json:"phases"`
	Saturation  *Saturation       `json:"saturation,omitempty"`
	SLO         *SLOResult        `json:"slo,omitempty"`
	Consistency ConsistencyReport `json:"consistency"`
}

// ParseReport decodes a capacity report strictly, rejecting unknown
// fields and version mismatches — the round-trip check the smoke job
// runs on every emitted report.
func ParseReport(data []byte) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, &ppcsim.ConfigError{Field: "Report", Reason: fmt.Sprintf("bad JSON: %v", err)}
	}
	if dec.More() {
		return nil, &ppcsim.ConfigError{Field: "Report", Reason: "trailing data after JSON document"}
	}
	if r.Version != ReportVersion {
		return nil, &ppcsim.ConfigError{Field: "Report.Version", Reason: fmt.Sprintf("got %d, this tool reads %d", r.Version, ReportVersion)}
	}
	if err := r.Spec.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// EvaluateSLO applies the spec's objectives to the measured phases.
// Latency ceilings are checked per class on every clean phase (one
// whose 429 fraction stayed below the saturation threshold): an
// overloaded step missing latency targets is the expected finding, not
// a breach. A body-consistency mismatch fails the verdict regardless of
// the spec. A nil SLO spec yields a pass verdict that only the
// consistency check can fail.
func EvaluateSLO(spec *LoadSpec, phases []PhaseReport, consistency ConsistencyReport) *SLOResult {
	res := &SLOResult{Pass: true}
	threshold := spec.onset429Fraction()
	slo := spec.SLO
	if slo != nil {
		var errSent, errCount int64
		for _, ph := range phases {
			clean := ph.Frac429 < threshold
			for _, cl := range Classes {
				st, ok := ph.Classes[string(cl)]
				if !ok {
					continue
				}
				errSent += st.Sent
				errCount += st.ServerErrors + st.TransportErrors
				limit, has := slo.P99Ms[string(cl)]
				if !has || !clean || st.Latency.Count == 0 {
					continue
				}
				if st.Latency.P99Ms > limit {
					res.Violations = append(res.Violations, SLOViolation{
						Phase: ph.Name, Class: string(cl), Rule: "p99_ms",
						Limit: limit, Actual: st.Latency.P99Ms,
						Message: fmt.Sprintf("%s: class %s p99 %.3fms exceeds %.3fms", ph.Name, cl, st.Latency.P99Ms, limit),
					})
				}
			}
		}
		if slo.MaxErrorFraction != nil && errSent > 0 {
			frac := float64(errCount) / float64(errSent)
			if frac > *slo.MaxErrorFraction {
				res.Violations = append(res.Violations, SLOViolation{
					Phase: "run", Rule: "max_error_fraction",
					Limit: *slo.MaxErrorFraction, Actual: frac,
					Message: fmt.Sprintf("run error fraction %.4f exceeds %.4f", frac, *slo.MaxErrorFraction),
				})
			}
		}
	}
	if len(consistency.MismatchedKeys) > 0 {
		res.Violations = append(res.Violations, SLOViolation{
			Phase: "run", Rule: "byte_identity",
			Actual:  float64(len(consistency.MismatchedKeys)),
			Message: fmt.Sprintf("%d canonical keys served non-identical bodies", len(consistency.MismatchedKeys)),
		})
	}
	res.Pass = len(res.Violations) == 0
	return res
}

// WriteTable renders the human-readable capacity table.
func WriteTable(w io.Writer, r *Report) {
	fmt.Fprintf(w, "ppc-load %s against %s (seed %d)\n", r.Spec.Mode, r.Target, r.Spec.Seed)
	fmt.Fprintf(w, "%-22s %9s %9s %7s  %8s %8s %8s %8s  %6s %6s %6s\n",
		"phase", "offered", "achieved", "429%", "p50ms", "p95ms", "p99ms", "p999ms", "ok", "rej", "err")
	for _, ph := range r.Phases {
		t := ph.Total
		errs := t.ClientErrors + t.ServerErrors + t.Timeouts + t.TransportErrors
		fmt.Fprintf(w, "%-22s %9.1f %9.1f %6.2f%%  %8.3f %8.3f %8.3f %8.3f  %6d %6d %6d\n",
			ph.Name, ph.OfferedRPS, ph.AchievedRPS, 100*ph.Frac429,
			t.Latency.P50Ms, t.Latency.P95Ms, t.Latency.P99Ms, t.Latency.P999Ms,
			t.OK, t.Rejected, errs)
	}
	if len(r.Phases) > 0 {
		last := r.Phases[len(r.Phases)-1]
		fmt.Fprintf(w, "per-class, final phase (%s):\n", last.Name)
		for _, name := range sortedClassNames(last.Classes) {
			st := last.Classes[name]
			fmt.Fprintf(w, "  %-10s sent %6d  ok %6d  hits %6d  rej %5d  4xx %5d  5xx %4d  tmo %4d  p99 %8.3fms  p999 %8.3fms\n",
				name, st.Sent, st.OK, st.CacheHits, st.Rejected, st.ClientErrors, st.ServerErrors, st.Timeouts,
				st.Latency.P99Ms, st.Latency.P999Ms)
		}
	}
	if s := r.Saturation; s != nil {
		if s.Found {
			fmt.Fprintf(w, "saturation: 429 onset at %.0f RPS (%.1f%% rejected; last clean step %.0f RPS)\n",
				s.OnsetRPS, 100*s.Frac429AtOnset, s.MaxCleanRPS)
		} else {
			fmt.Fprintf(w, "saturation: not reached (ramp exhausted below the %.1f%% onset threshold)\n", 100*s.Threshold)
		}
	}
	fmt.Fprintf(w, "consistency: %s\n", r.Consistency)
	if r.SLO != nil {
		if r.SLO.Pass {
			fmt.Fprintln(w, "SLO verdict: PASS")
		} else {
			fmt.Fprintf(w, "SLO verdict: FAIL (%d violations)\n", len(r.SLO.Violations))
			for _, v := range r.SLO.Violations {
				fmt.Fprintf(w, "  - %s\n", v.Message)
			}
		}
	}
}

// NextReportPath returns the first unused LOAD_<n>.json name in dir,
// matching ppc-bench's BENCH_<n>.json numbering.
func NextReportPath(dir string) string {
	for n := 0; ; n++ {
		path := filepath.Join(dir, fmt.Sprintf("LOAD_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}

// sortedClassNames returns the report's class keys in fixed order (for
// renderers that walk the per-class map).
func sortedClassNames(m map[string]ClassStats) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
