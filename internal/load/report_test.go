package load

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rampSpecForTest() *LoadSpec {
	return &LoadSpec{
		Seed: 1,
		Mode: "ramp",
		Ramp: &RampSpec{StartRPS: 100, StepRPS: 100, MaxRPS: 300, StepSeconds: 1},
	}
}

func phaseWith(name string, frac429 float64, classes map[string]ClassStats) PhaseReport {
	return PhaseReport{Name: name, OfferedRPS: 100, AchievedRPS: 99, Mix: DefaultMix, Frac429: frac429, Classes: classes}
}

// TestReportRoundTrip writes a report and re-parses it strictly.
func TestReportRoundTrip(t *testing.T) {
	rep := &Report{
		Version:    ReportVersion,
		Tool:       "ppc-load",
		Spec:       *rampSpecForTest(),
		Target:     "embedded",
		GoVersion:  "go0.0",
		GOMAXPROCS: 4,
		Phases: []PhaseReport{phaseWith("ramp@100rps", 0, map[string]ClassStats{
			"cached": {Sent: 10, OK: 10, CacheHits: 9, Latency: LatencySummary{Count: 10, P99Ms: 1}},
		})},
		Saturation:  &Saturation{Found: true, OnsetRPS: 200, MaxCleanRPS: 100, Frac429AtOnset: 0.02, Threshold: 0.01},
		SLO:         &SLOResult{Pass: true},
		Consistency: ConsistencyReport{CheckedBodies: 10, DistinctKeys: 3},
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(raw)
	if err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Saturation == nil || back.Saturation.OnsetRPS != 200 {
		t.Fatalf("saturation lost: %+v", back.Saturation)
	}
	if back.Spec.Mode != "ramp" {
		t.Fatalf("spec lost: %+v", back.Spec)
	}
}

// TestParseReportRejects covers the strict-decoding boundary.
func TestParseReportRejects(t *testing.T) {
	good, _ := json.Marshal(&Report{Version: ReportVersion, Tool: "ppc-load", Spec: *rampSpecForTest(), Target: "t"})
	for name, raw := range map[string][]byte{
		"unknown field":    []byte(`{"version":1,"bogus":true}`),
		"version mismatch": []byte(`{"version":99,"tool":"ppc-load","spec":{"seed":1,"mode":"ramp","ramp":{"start_rps":1,"step_rps":1,"max_rps":2,"step_seconds":1}},"target":"t","go_version":"g","gomaxprocs":1,"phases":null,"consistency":{"checked_bodies":0,"distinct_keys":0}}`),
		"invalid spec":     bytes.Replace(good, []byte(`"mode":"ramp"`), []byte(`"mode":"nope"`), 1),
		"trailing":         append(append([]byte{}, good...), []byte(" 1")...),
	} {
		if _, err := ParseReport(raw); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ParseReport(good); err != nil {
		t.Fatalf("good report rejected: %v", err)
	}
}

// TestEvaluateSLOCleanPhaseViolation: a p99 ceiling broken on a clean
// phase is a violation.
func TestEvaluateSLOCleanPhaseViolation(t *testing.T) {
	spec := rampSpecForTest()
	spec.SLO = &SLOSpec{P99Ms: map[string]float64{"cached": 5}}
	phases := []PhaseReport{phaseWith("p0", 0, map[string]ClassStats{
		"cached": {Sent: 100, OK: 100, Latency: LatencySummary{Count: 100, P99Ms: 9}},
	})}
	res := EvaluateSLO(spec, phases, ConsistencyReport{})
	if res.Pass || len(res.Violations) != 1 {
		t.Fatalf("verdict = %+v", res)
	}
	v := res.Violations[0]
	if v.Rule != "p99_ms" || v.Class != "cached" || v.Limit != 5 || v.Actual != 9 {
		t.Fatalf("violation = %+v", v)
	}
}

// TestEvaluateSLOSkipsSaturatedPhases: the same breach on an
// overloaded step (429 fraction at/above threshold) is a finding, not
// an SLO failure.
func TestEvaluateSLOSkipsSaturatedPhases(t *testing.T) {
	spec := rampSpecForTest()
	spec.SLO = &SLOSpec{P99Ms: map[string]float64{"cached": 5}}
	phases := []PhaseReport{phaseWith("p0", 0.5, map[string]ClassStats{
		"cached": {Sent: 100, OK: 40, Rejected: 60, Latency: LatencySummary{Count: 100, P99Ms: 50}},
	})}
	res := EvaluateSLO(spec, phases, ConsistencyReport{})
	if !res.Pass {
		t.Fatalf("saturated phase counted against the SLO: %+v", res.Violations)
	}
}

// TestEvaluateSLOErrorFraction is run-wide over well-formed sent.
func TestEvaluateSLOErrorFraction(t *testing.T) {
	spec := rampSpecForTest()
	spec.SLO = &SLOSpec{MaxErrorFraction: floatp(0.05)}
	phases := []PhaseReport{phaseWith("p0", 0, map[string]ClassStats{
		"cold": {Sent: 100, OK: 90, ServerErrors: 6, TransportErrors: 4},
	})}
	res := EvaluateSLO(spec, phases, ConsistencyReport{})
	if res.Pass || len(res.Violations) != 1 || res.Violations[0].Rule != "max_error_fraction" {
		t.Fatalf("verdict = %+v", res)
	}
	// 429s and 4xx are not errors under this rule.
	phases = []PhaseReport{phaseWith("p0", 0, map[string]ClassStats{
		"cold": {Sent: 100, OK: 40, Rejected: 50, ClientErrors: 10},
	})}
	if res := EvaluateSLO(spec, phases, ConsistencyReport{}); !res.Pass {
		t.Fatalf("backpressure counted as errors: %+v", res.Violations)
	}
}

// TestEvaluateSLOByteIdentityAlwaysFails: a consistency mismatch fails
// the verdict even with no SLO spec at all.
func TestEvaluateSLOByteIdentityAlwaysFails(t *testing.T) {
	res := EvaluateSLO(rampSpecForTest(), nil, ConsistencyReport{CheckedBodies: 2, DistinctKeys: 1, MismatchedKeys: []string{"k"}})
	if res.Pass || len(res.Violations) != 1 || res.Violations[0].Rule != "byte_identity" {
		t.Fatalf("verdict = %+v", res)
	}
	if res := EvaluateSLO(rampSpecForTest(), nil, ConsistencyReport{}); !res.Pass {
		t.Fatalf("nil SLO with clean consistency should pass: %+v", res.Violations)
	}
}

// TestWriteTableRendersEverySection smoke-checks the human table.
func TestWriteTableRendersEverySection(t *testing.T) {
	rep := &Report{
		Version: ReportVersion, Tool: "ppc-load", Spec: *rampSpecForTest(), Target: "embedded",
		Phases: []PhaseReport{phaseWith("ramp@100rps", 0, map[string]ClassStats{
			"cached": {Sent: 5, OK: 5}, "malformed": {Sent: 1, ClientErrors: 1},
		})},
		Saturation:  &Saturation{Found: true, OnsetRPS: 200, MaxCleanRPS: 100, Threshold: 0.01},
		SLO:         &SLOResult{Pass: false, Violations: []SLOViolation{{Message: "boom"}}},
		Consistency: ConsistencyReport{CheckedBodies: 5, DistinctKeys: 2},
	}
	var buf bytes.Buffer
	WriteTable(&buf, rep)
	out := buf.String()
	for _, want := range []string{"ramp@100rps", "onset at 200 RPS", "byte-identical", "FAIL", "boom", "malformed"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	rep.Saturation = &Saturation{Found: false, Threshold: 0.01}
	rep.SLO = &SLOResult{Pass: true}
	buf.Reset()
	WriteTable(&buf, rep)
	if out := buf.String(); !strings.Contains(out, "not reached") || !strings.Contains(out, "PASS") {
		t.Errorf("table missing not-reached/PASS branches:\n%s", out)
	}
}

// TestNextReportPath numbers like ppc-bench: first unused LOAD_<n>.
func TestNextReportPath(t *testing.T) {
	dir := t.TempDir()
	if got, want := NextReportPath(dir), filepath.Join(dir, "LOAD_0.json"); got != want {
		t.Fatalf("empty dir: %s, want %s", got, want)
	}
	if err := os.WriteFile(filepath.Join(dir, "LOAD_0.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, want := NextReportPath(dir), filepath.Join(dir, "LOAD_1.json"); got != want {
		t.Fatalf("after LOAD_0: %s, want %s", got, want)
	}
}
