package load

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"ppcsim"
	"ppcsim/internal/serve"
)

// stubServer builds a real serving stack whose simulation runner is a
// fixed 1ms sleep: real queue/429/cache dynamics with a deterministic
// per-request cost, so capacity is exactly workers/1ms.
func stubServer(t *testing.T, workers, queue int) *serve.Server {
	t.Helper()
	srv := serve.New(serve.Config{
		Workers:    workers,
		QueueDepth: queue,
		Runner: func(ctx context.Context, opts ppcsim.Options) (ppcsim.Result, error) {
			select {
			case <-ctx.Done():
				return ppcsim.Result{}, ctx.Err()
			case <-time.After(time.Millisecond):
			}
			return ppcsim.Result{Policy: string(opts.Algorithm)}, nil
		},
	})
	t.Cleanup(srv.Close)
	return srv
}

// rampOnset runs one ramp against a fresh stub server and returns the
// report. The geometry guarantees the outcome independent of host
// timing: the clean step's total arrivals (100) fit inside the queue
// (256), so it can never see a 429 even if every arrival lands at once,
// while the overload step offers 1600 arrivals against a hard service
// ceiling of 2 per millisecond, so at least half must be rejected.
func rampOnset(t *testing.T, seed int64) *Report {
	t.Helper()
	srv := stubServer(t, 2, 256)
	spec := &LoadSpec{
		Seed:      seed,
		Mode:      "ramp",
		Mix:       &Mix{Cold: 1},
		ColdRefs:  16,
		SkipPrime: true,
		Ramp:      &RampSpec{StartRPS: 400, StepRPS: 6000, MaxRPS: 6400, StepSeconds: 0.25},
	}
	r := &Runner{Spec: spec, Target: NewHandlerTarget("stub", srv.Handler())}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRunnerRampFindsSaturation is the acceptance property at unit
// scale: ramp mode finds the 429 onset, and two runs of one seed land
// on the same step.
func TestRunnerRampFindsSaturation(t *testing.T) {
	rep1 := rampOnset(t, 11)
	if rep1.Saturation == nil || !rep1.Saturation.Found {
		t.Fatalf("saturation not found: %+v", rep1.Saturation)
	}
	if rep1.Saturation.OnsetRPS != 6400 || rep1.Saturation.MaxCleanRPS != 400 {
		t.Fatalf("onset at %.0f (clean %.0f), want 6400 (clean 400)",
			rep1.Saturation.OnsetRPS, rep1.Saturation.MaxCleanRPS)
	}
	if f := rep1.Phases[0].Frac429; f != 0 {
		t.Fatalf("clean step saw %.2f%% 429s; arrivals fit the queue, so none are possible", 100*f)
	}
	if f := rep1.Saturation.Frac429AtOnset; f < 0.4 {
		t.Fatalf("onset step rejected only %.2f%%, want at least ~50%% from the service ceiling", 100*f)
	}
	rep2 := rampOnset(t, 11)
	if rep2.Saturation.OnsetRPS != rep1.Saturation.OnsetRPS {
		t.Fatalf("same seed, different onset: %.0f vs %.0f", rep1.Saturation.OnsetRPS, rep2.Saturation.OnsetRPS)
	}
	// Consistency must have been tracked (each cold key exactly once).
	if rep1.Consistency.CheckedBodies == 0 {
		t.Fatal("no bodies reached the consistency checker")
	}
	if len(rep1.Consistency.MismatchedKeys) != 0 {
		t.Fatalf("mismatched keys: %v", rep1.Consistency.MismatchedKeys)
	}
}

// TestRunnerRampNotReached: a target that never backpressures exhausts
// the ramp with Found=false and one phase per step.
func TestRunnerRampNotReached(t *testing.T) {
	spec := &LoadSpec{
		Seed:      1,
		Mode:      "ramp",
		SkipPrime: true,
		ColdRefs:  8,
		Ramp:      &RampSpec{StartRPS: 10, StepRPS: 10, MaxRPS: 30, StepSeconds: 1},
	}
	r := &Runner{Spec: spec, Target: okTarget{}, Clock: NewFakeClock()}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Saturation == nil || rep.Saturation.Found {
		t.Fatalf("saturation = %+v, want not found", rep.Saturation)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("phases = %d, want 3 (10, 20, 30 rps)", len(rep.Phases))
	}
	for i, want := range []float64{10, 20, 30} {
		if rep.Phases[i].OfferedRPS != want {
			t.Fatalf("phase %d offered %.0f, want %.0f", i, rep.Phases[i].OfferedRPS, want)
		}
	}
}

// TestRunnerBurstPhases runs burst mode on a fake clock: the square
// wave must produce low/high phase pairs per cycle at exact nominal
// durations, with achieved == offered (nothing shed, clock exact).
func TestRunnerBurstPhases(t *testing.T) {
	spec := &LoadSpec{
		Seed:      3,
		Mode:      "burst",
		SkipPrime: true,
		ColdRefs:  8,
		Burst:     &BurstSpec{LowRPS: 10, HighRPS: 40, PeriodSeconds: 2, Cycles: 2},
	}
	r := &Runner{Spec: spec, Target: okTarget{}, Clock: NewFakeClock()}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"burst c0 low", "burst c0 high", "burst c1 low", "burst c1 high"}
	wantRPS := []float64{10, 40, 10, 40}
	if len(rep.Phases) != len(wantNames) {
		t.Fatalf("phases = %d, want %d", len(rep.Phases), len(wantNames))
	}
	for i, ph := range rep.Phases {
		if ph.Name != wantNames[i] || ph.OfferedRPS != wantRPS[i] {
			t.Fatalf("phase %d = %q@%.0f, want %q@%.0f", i, ph.Name, ph.OfferedRPS, wantNames[i], wantRPS[i])
		}
		if ph.DurationMs != 1000 {
			t.Fatalf("phase %d duration %.1fms, want exactly the nominal 1000ms on a fake clock", i, ph.DurationMs)
		}
		if ph.AchievedRPS != ph.OfferedRPS {
			t.Fatalf("phase %d achieved %.2f, offered %.2f", i, ph.AchievedRPS, ph.OfferedRPS)
		}
		if ph.Total.Shed != 0 {
			t.Fatalf("phase %d shed %d", i, ph.Total.Shed)
		}
	}
}

// TestRunnerSweepGrid crosses the RPS grid with a mix grid and checks
// every cell runs with its own mix.
func TestRunnerSweepGrid(t *testing.T) {
	spec := &LoadSpec{
		Seed:      4,
		Mode:      "sweep",
		SkipPrime: true,
		ColdRefs:  8,
		Sweep: &SweepSpec{
			RPS:             []float64{20, 30},
			Mixes:           []Mix{{Cold: 1}, {Cached: 1}},
			SecondsPerPoint: 1,
		},
	}
	r := &Runner{Spec: spec, Target: okTarget{}, Clock: NewFakeClock()}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(rep.Phases))
	}
	for i, ph := range rep.Phases {
		wantClass := ClassCold
		if i >= 2 { // second mix row
			wantClass = ClassCached
		}
		for _, cl := range Classes {
			st := ph.Classes[string(cl)]
			if cl == wantClass && st.Sent == 0 {
				t.Fatalf("phase %s: class %s never sent", ph.Name, cl)
			}
			if cl != wantClass && st.Sent != 0 {
				t.Fatalf("phase %s: class %s sent %d under a single-class mix", ph.Name, cl, st.Sent)
			}
		}
	}
}

// countingTarget counts requests and answers 200 with a fixed body.
type countingTarget struct{ n atomic.Int64 }

func (c *countingTarget) Name() string { return "counting" }
func (c *countingTarget) Do(ctx context.Context, body []byte) TargetResult {
	c.n.Add(1)
	return TargetResult{Status: 200, Body: []byte("fixed")}
}

// TestRunnerPrimesPool: without SkipPrime the runner touches every
// finite-pool key once before phase one, and those bodies feed the
// consistency checker.
func TestRunnerPrimesPool(t *testing.T) {
	spec := &LoadSpec{
		Seed:  5,
		Mode:  "sweep",
		Mix:   &Mix{Malformed: 1}, // phases send nothing well-formed
		Sweep: &SweepSpec{RPS: []float64{5}, SecondsPerPoint: 1},
	}
	gen, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	poolSize := len(gen.PoolRequests())
	tgt := &countingTarget{}
	r := &Runner{Spec: spec, Target: tgt, Clock: NewFakeClock()}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	phaseSent := rep.Phases[0].Total.Sent
	if got := tgt.n.Load(); got != int64(poolSize)+phaseSent {
		t.Fatalf("target saw %d requests, want %d pool + %d phase", got, poolSize, phaseSent)
	}
	if rep.Consistency.CheckedBodies != int64(poolSize) {
		t.Fatalf("checker saw %d bodies, want the %d pool responses", rep.Consistency.CheckedBodies, poolSize)
	}
}

// versionedTarget returns a body chosen at construction — two runs with
// different bodies simulate a server whose cache broke byte-identity.
type versionedTarget struct{ body string }

func (v *versionedTarget) Name() string { return "versioned" }
func (v *versionedTarget) Do(ctx context.Context, body []byte) TargetResult {
	return TargetResult{Status: 200, Body: []byte(v.body)}
}

// TestRunnerSharedCheckerAcrossRuns: one Consistency passed to two runs
// extends byte-identity across them, and a cross-run divergence fails
// the second run's verdict.
func TestRunnerSharedCheckerAcrossRuns(t *testing.T) {
	spec := &LoadSpec{
		Seed:      6,
		Mode:      "sweep",
		Mix:       &Mix{Cached: 1}, // repeats a fixed key pool
		SkipPrime: true,
		Sweep:     &SweepSpec{RPS: []float64{20}, SecondsPerPoint: 1},
	}
	check := NewConsistency()
	run := func(body string) *Report {
		r := &Runner{Spec: spec, Target: &versionedTarget{body: body}, Clock: NewFakeClock(), Check: check}
		rep, err := r.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep1 := run("v1")
	if len(rep1.Consistency.MismatchedKeys) != 0 {
		t.Fatalf("run 1 mismatches: %v", rep1.Consistency.MismatchedKeys)
	}
	rep2 := run("v2")
	if len(rep2.Consistency.MismatchedKeys) == 0 {
		t.Fatal("cross-run body change not detected by the shared checker")
	}
	if rep2.SLO == nil || rep2.SLO.Pass {
		t.Fatal("byte-identity break must fail the verdict")
	}
}

// TestRunnerRejectsInvalidSpec: Run validates before generating.
func TestRunnerRejectsInvalidSpec(t *testing.T) {
	r := &Runner{Spec: &LoadSpec{Mode: "warp"}, Target: okTarget{}}
	if _, err := r.Run(context.Background()); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// TestRunnerCancel: a canceled context stops the run with its error.
func TestRunnerCancel(t *testing.T) {
	spec := &LoadSpec{
		Seed:      7,
		Mode:      "sweep",
		SkipPrime: true,
		ColdRefs:  8,
		Sweep:     &SweepSpec{RPS: []float64{10}, SecondsPerPoint: 1},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Runner{Spec: spec, Target: okTarget{}, Clock: NewFakeClock()}
	if _, err := r.Run(ctx); err == nil {
		t.Fatal("canceled run returned no error")
	}
}
