package load

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"

	"ppcsim/internal/layout"
	"ppcsim/internal/serve"
	"ppcsim/internal/trace"
)

// MalformedKinds lists the boundary-violating request sub-classes the
// generator can emit, in the fixed order the boundary tests enumerate.
// Every kind must draw a 4xx with the v1 error envelope and must never
// consume a worker-pool slot.
var MalformedKinds = []string{
	"unknown_field",      // strict decoding rejects a typoed knob
	"truncated_columnar", // base64 columnar body cut mid-frame
	"oversize",           // body larger than the server's -max-body
	"bad_algorithm",      // algorithm name the parser does not know
}

// GenRequest is one generated request: the exact POST /v1/run body, its
// class, and — for well-formed classes — the canonical result-cache key
// the serving stack will compute for it, which the collector uses to
// assert byte-identical response bodies per key.
type GenRequest struct {
	Class Class
	// Kind is the malformed sub-class (one of MalformedKinds) and empty
	// for well-formed requests.
	Kind string
	Body []byte
	// Key is the canonical cache key (serve.RunSpec.Key) of a well-formed
	// request, empty for malformed ones.
	Key string
}

// Generator synthesizes the deterministic request stream: every body is
// a pure function of (spec seed, request ordinal), so replaying a spec
// replays the identical byte stream. A Generator is not safe for
// concurrent use; the scheduler pre-generates each phase before its
// clock starts.
type Generator struct {
	spec *LoadSpec
	rng  *rand.Rand

	warm     []GenRequest // fixed pool for ClassCached
	cells    []GenRequest // finite grid for ClassSweep
	cellNext int

	coldSeq int
	colSeq  int

	oversize []byte // shared filler payload for the oversize kind
}

// NewGenerator builds the generator for a validated spec, pre-building
// the cached pool and sweep grid (both finite and spec-independent
// except for body size knobs).
func NewGenerator(spec *LoadSpec) (*Generator, error) {
	g := &Generator{
		spec: spec,
		rng:  rand.New(rand.NewSource(spec.Seed)),
	}
	// The warm pool: a handful of bundled-trace configurations repeated
	// for the run's whole lifetime. After each key's first miss, every
	// repeat is a result-cache hit (55% of DefaultMix re-touches these
	// keys, which keeps them pinned at the LRU head even while unique
	// cold keys stream through the cache).
	warmAlgs := []string{"demand", "aggressive", "forestall", "fixed-horizon"}
	for _, alg := range warmAlgs {
		for _, disks := range []int{1, 4} {
			req, err := runSpecRequest(serve.RunSpec{
				Trace:       "synth",
				Algorithm:   alg,
				Disks:       intp(disks),
				CacheBlocks: intp(512),
			}, ClassCached)
			if err != nil {
				return nil, err
			}
			g.warm = append(g.warm, req)
		}
	}
	// The sweep grid: distinct cells like a coordinator shard's share of
	// a parameter sweep — finite, so the grid warms as the run proceeds.
	for _, alg := range warmAlgs {
		for _, disks := range []int{1, 2, 4} {
			for _, cache := range []int{256, 1024} {
				req, err := runSpecRequest(serve.RunSpec{
					Trace:       "synth",
					Algorithm:   alg,
					Disks:       intp(disks),
					CacheBlocks: intp(cache),
				}, ClassSweep)
				if err != nil {
					return nil, err
				}
				g.cells = append(g.cells, req)
			}
		}
	}
	g.oversize = bytes.Repeat([]byte("A"), spec.oversizeBytes())
	return g, nil
}

// runSpecRequest marshals a RunSpec into its POST /v1/run body and
// canonical key.
func runSpecRequest(rs serve.RunSpec, class Class) (GenRequest, error) {
	if err := rs.Validate(); err != nil {
		return GenRequest{}, fmt.Errorf("load: generated spec invalid: %w", err)
	}
	body, err := json.Marshal(serve.Request{RunSpec: rs})
	if err != nil {
		return GenRequest{}, err
	}
	return GenRequest{Class: class, Body: body, Key: rs.Key()}, nil
}

func intp(v int) *int { return &v }

// PoolRequests returns one instance of every finite-pool request (the
// cached pool and the sweep grid) in deterministic order. The runner
// posts these once before the measured phases so each pool key's
// first-touch compute lands in warm-up, not in a measured step — ramp
// saturation should find the steady-state capacity, not the cost of a
// cold result cache.
func (g *Generator) PoolRequests() []GenRequest {
	out := make([]GenRequest, 0, len(g.warm)+len(g.cells))
	out = append(out, g.warm...)
	return append(out, g.cells...)
}

// Next draws the next request under the given mix. The rng consumption
// order is fixed (class draw, then body draws), so the stream is
// deterministic for a spec regardless of wall-clock timing.
func (g *Generator) Next(mix Mix) GenRequest {
	r := g.rng.Float64() * mix.total()
	var class Class
	for _, c := range Classes {
		w := mix.Weight(c)
		if w <= 0 {
			continue
		}
		if r < w {
			class = c
			break
		}
		r -= w
	}
	if class == "" {
		class = lastPositive(mix) // float tail: credit the final weighted class
	}
	switch class {
	case ClassCached:
		return g.warm[g.rng.Intn(len(g.warm))]
	case ClassCold:
		return g.cold()
	case ClassColumnar:
		return g.columnar()
	case ClassSweep:
		req := g.cells[g.cellNext%len(g.cells)]
		g.cellNext++
		return req
	default:
		return g.malformed()
	}
}

func lastPositive(mix Mix) Class {
	last := Classes[0]
	for _, c := range Classes {
		if mix.Weight(c) > 0 {
			last = c
		}
	}
	return last
}

// synthTrace builds one small random trace: the body payload of the
// cold and columnar classes. The name carries the ordinal, so every
// generated trace is unique (and hashes to a unique canonical key) even
// if the reference pattern repeated.
func (g *Generator) synthTrace(name string) *trace.Trace {
	const nBlocks = 128
	refs := make([]trace.Ref, g.spec.coldRefs())
	for i := range refs {
		refs[i] = trace.Ref{
			Block:     layout.BlockID(g.rng.Intn(nBlocks)),
			ComputeMs: 0.01 + 0.2*g.rng.Float64(),
		}
	}
	return &trace.Trace{
		Name:        name,
		Refs:        refs,
		Files:       []layout.File{{Blocks: nBlocks}},
		CacheBlocks: 64,
	}
}

// cold emits a unique inline ppctrace text body: always a cache miss,
// always a fresh simulation.
func (g *Generator) cold() GenRequest {
	tr := g.synthTrace(fmt.Sprintf("cold-%06d", g.coldSeq))
	g.coldSeq++
	var text strings.Builder
	if err := tr.Write(&text); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	req, err := runSpecRequest(serve.RunSpec{
		TraceText:   text.String(),
		Algorithm:   g.pick("demand", "aggressive", "forestall"),
		Disks:       intp(g.pickInt(1, 2, 4)),
		CacheBlocks: intp(64),
	}, ClassCold)
	if err != nil {
		panic(err) // the generator only builds specs it knows are valid
	}
	return req
}

// columnar emits a unique base64 columnar binary body (the streaming
// wire form of docs/trace-format.md).
func (g *Generator) columnar() GenRequest {
	tr := g.synthTrace(fmt.Sprintf("col-%06d", g.colSeq))
	g.colSeq++
	var buf bytes.Buffer
	if _, err := trace.WriteColumnar(&buf, tr.Source()); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	req, err := runSpecRequest(serve.RunSpec{
		TraceText:   base64.StdEncoding.EncodeToString(buf.Bytes()),
		Algorithm:   g.pick("demand", "aggressive", "forestall"),
		Disks:       intp(g.pickInt(1, 2, 4)),
		CacheBlocks: intp(64),
	}, ClassColumnar)
	if err != nil {
		panic(err)
	}
	return req
}

// malformed emits one boundary-violating body, rotating kinds by rng
// draw. Bodies are built by MalformedBody so the boundary table tests
// exercise exactly what the generator sends.
func (g *Generator) malformed() GenRequest {
	kind := MalformedKinds[g.rng.Intn(len(MalformedKinds))]
	return GenRequest{Class: ClassMalformed, Kind: kind, Body: g.MalformedBody(kind)}
}

// MalformedBody returns the request body for one malformed kind.
func (g *Generator) MalformedBody(kind string) []byte {
	switch kind {
	case "unknown_field":
		return []byte(`{"trace":"synth","algorithm":"demand","bogus_knob":1}`)
	case "truncated_columnar":
		// A structurally valid base64 string that sniffs as columnar but
		// decodes to a cut-off stream: the columnar magic plus padding,
		// far short of a full header.
		return []byte(`{"trace_text":"` + trace.ColumnarBase64Prefix + `AAAA","algorithm":"demand"}`)
	case "oversize":
		body := append([]byte(`{"trace_text":"`), g.oversize...)
		return append(body, []byte(`","algorithm":"demand"}`)...)
	case "bad_algorithm":
		return []byte(`{"trace":"synth","algorithm":"quantum-oracle"}`)
	}
	panic(fmt.Sprintf("load: unknown malformed kind %q", kind))
}

func (g *Generator) pick(names ...string) string {
	return names[g.rng.Intn(len(names))]
}

func (g *Generator) pickInt(vs ...int) int {
	return vs[g.rng.Intn(len(vs))]
}
