package load

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// TargetResult is one request's outcome as the client saw it: an HTTP
// status plus response body, or a transport error. Timeout reports a
// client-side deadline (the server-side analogue is a 504 status).
type TargetResult struct {
	Status   int
	Body     []byte
	CacheHit bool // X-Cache: hit
	Err      error
	Timeout  bool
}

// Target is where generated requests land: POST /v1/run on a real
// ppc-serve or ppc-coord URL, an in-process serving handler, or a test
// fake with a scripted capacity.
type Target interface {
	// Name identifies the target in the capacity report.
	Name() string
	// Do sends one /v1/run body and blocks until the response (or
	// transport failure). It must be safe for concurrent use.
	Do(ctx context.Context, body []byte) TargetResult
}

// HTTPTarget drives a v1 server over real HTTP.
type HTTPTarget struct {
	url    string
	client *http.Client
}

// NewHTTPTarget builds a target POSTing to baseURL+"/v1/run" with the
// given per-request timeout (0 means no client-side deadline; the
// server's own deadline still applies).
func NewHTTPTarget(baseURL string, timeout time.Duration) *HTTPTarget {
	return &HTTPTarget{
		url: baseURL + "/v1/run",
		client: &http.Client{
			Timeout: timeout,
			// A load generator needs more idle connections per host than
			// the transport default (2), or it measures connection setup.
			Transport: &http.Transport{
				MaxIdleConns:        1024,
				MaxIdleConnsPerHost: 1024,
			},
		},
	}
}

// Name implements Target.
func (t *HTTPTarget) Name() string { return t.url }

// Do implements Target.
func (t *HTTPTarget) Do(ctx context.Context, body []byte) TargetResult {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.url, bytes.NewReader(body))
	if err != nil {
		return TargetResult{Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client.Do(req)
	if err != nil {
		return TargetResult{Err: err, Timeout: isTimeout(err)}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return TargetResult{Err: fmt.Errorf("reading response: %w", err), Timeout: isTimeout(err)}
	}
	return TargetResult{
		Status:   resp.StatusCode,
		Body:     data,
		CacheHit: resp.Header.Get("X-Cache") == "hit",
	}
}

func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// HandlerTarget drives an in-process http.Handler directly — the full
// serving path (mux, boundary, envelope, backpressure) minus the TCP
// stack. It is how ppc-load's embedded mode and the deterministic tests
// reach a server without sockets.
type HandlerTarget struct {
	name string
	h    http.Handler
}

// NewHandlerTarget wraps a serving handler.
func NewHandlerTarget(name string, h http.Handler) *HandlerTarget {
	return &HandlerTarget{name: name, h: h}
}

// Name implements Target.
func (t *HandlerTarget) Name() string { return t.name }

// Do implements Target.
func (t *HandlerTarget) Do(ctx context.Context, body []byte) TargetResult {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "/v1/run", bytes.NewReader(body))
	if err != nil {
		return TargetResult{Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.ContentLength = int64(len(body))
	req.RemoteAddr = "embedded"
	var rec responseRecorder
	t.h.ServeHTTP(&rec, req)
	status := rec.status
	if status == 0 {
		status = http.StatusOK
	}
	return TargetResult{
		Status:   status,
		Body:     rec.buf.Bytes(),
		CacheHit: rec.Header().Get("X-Cache") == "hit",
	}
}

// responseRecorder is the minimal in-memory http.ResponseWriter the
// handler target needs (httptest's recorder without the test-only
// surface, so the ppc-load binary does not import net/http/httptest).
type responseRecorder struct {
	hdr    http.Header
	status int
	buf    bytes.Buffer
}

func (r *responseRecorder) Header() http.Header {
	if r.hdr == nil {
		r.hdr = make(http.Header)
	}
	return r.hdr
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.buf.Write(p)
}

func (r *responseRecorder) WriteHeader(status int) {
	if r.status == 0 {
		r.status = status
	}
}
