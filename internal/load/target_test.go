package load

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestHTTPTarget drives the real-HTTP path end to end: status, body,
// X-Cache parsing, and the client-side timeout classification.
func TestHTTPTarget(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/run" {
			t.Errorf("got %s %s, want POST /v1/run", r.Method, r.URL.Path)
		}
		if hits.Add(1) > 1 {
			w.Header().Set("X-Cache", "hit")
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	tgt := NewHTTPTarget(srv.URL, 5*time.Second)
	if tgt.Name() != srv.URL+"/v1/run" {
		t.Fatalf("name = %q", tgt.Name())
	}
	res := tgt.Do(context.Background(), []byte(`{}`))
	if res.Err != nil || res.Status != 200 || string(res.Body) != `{"ok":true}` || res.CacheHit {
		t.Fatalf("first request: %+v", res)
	}
	res = tgt.Do(context.Background(), []byte(`{}`))
	if !res.CacheHit {
		t.Fatalf("X-Cache: hit not parsed: %+v", res)
	}
}

// TestHTTPTargetTimeout: a stalled server must classify as Timeout, not
// a generic transport error.
func TestHTTPTargetTimeout(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(release) // unblock the handler before Close waits on it

	tgt := NewHTTPTarget(srv.URL, 20*time.Millisecond)
	res := tgt.Do(context.Background(), []byte(`{}`))
	if res.Err == nil || !res.Timeout {
		t.Fatalf("stalled server: %+v", res)
	}
}

// TestHTTPTargetRefused: a dead endpoint is a transport error.
func TestHTTPTargetRefused(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // now nothing listens there
	res := NewHTTPTarget(srv.URL, time.Second).Do(context.Background(), []byte(`{}`))
	if res.Err == nil || res.Timeout {
		t.Fatalf("dead endpoint: %+v", res)
	}
}

// TestHandlerTargetStatuses checks the recorder reports explicit and
// implicit statuses and headers.
func TestHandlerTargetStatuses(t *testing.T) {
	tgt := NewHandlerTarget("t", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Header.Get("Content-Type") {
		case "application/json":
			w.Header().Set("X-Cache", "hit")
			w.WriteHeader(429)
			w.Write([]byte("slow down"))
		}
	}))
	res := tgt.Do(context.Background(), []byte(`{}`))
	if res.Status != 429 || string(res.Body) != "slow down" || !res.CacheHit {
		t.Fatalf("explicit status: %+v", res)
	}
	implicit := NewHandlerTarget("t", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	if res := implicit.Do(context.Background(), nil); res.Status != 200 {
		t.Fatalf("implicit status: %+v", res)
	}
}

// TestFakeClock pins the test clock: Sleep advances Now immediately and
// records each interval.
func TestFakeClock(t *testing.T) {
	c := NewFakeClock()
	start := c.Now()
	c.Sleep(3 * time.Second)
	c.Sleep(0)
	c.Sleep(time.Millisecond)
	if got := c.Now().Sub(start); got != 3*time.Second+time.Millisecond {
		t.Fatalf("advanced %v", got)
	}
	slept := c.Slept()
	if len(slept) != 3 || slept[0] != 3*time.Second || slept[2] != time.Millisecond {
		t.Fatalf("slept = %v", slept)
	}
	if RealClock() == nil {
		t.Fatal("RealClock() returned nil")
	}
}
