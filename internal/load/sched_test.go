package load

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestTimelineExactGrid pins the jitter-free schedule: arrival i sits
// exactly on the uniform grid i/rps, and the count covers the duration.
func TestTimelineExactGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tl := NewTimeline(100, time.Second, 0, rng)
	if len(tl) != 100 {
		t.Fatalf("100 rps over 1s: want 100 arrivals, got %d", len(tl))
	}
	for i, at := range tl {
		want := time.Duration(float64(i) * float64(time.Second) / 100)
		if at != want {
			t.Fatalf("arrival %d at %v, want exactly %v", i, at, want)
		}
	}
}

// TestTimelineJitterBounds asserts every jittered arrival stays inside
// its slot [i·gap, i·gap + jitter·gap) — the bound that keeps the
// schedule monotone — and that the same seed reproduces the same
// schedule while a different seed does not.
func TestTimelineJitterBounds(t *testing.T) {
	const rps, jitter = 250.0, 0.5
	tl := NewTimeline(rps, 2*time.Second, jitter, rand.New(rand.NewSource(7)))
	if len(tl) != 500 {
		t.Fatalf("250 rps over 2s: want 500 arrivals, got %d", len(tl))
	}
	for i, at := range tl {
		lo, hi := tl.JitterBound(i, rps, jitter)
		if at < lo || at >= hi {
			t.Fatalf("arrival %d at %v outside [%v, %v)", i, at, lo, hi)
		}
		if i > 0 && at <= tl[i-1] {
			t.Fatalf("schedule not strictly monotone at %d: %v after %v", i, at, tl[i-1])
		}
	}
	same := NewTimeline(rps, 2*time.Second, jitter, rand.New(rand.NewSource(7)))
	for i := range tl {
		if tl[i] != same[i] {
			t.Fatalf("same seed diverged at arrival %d: %v vs %v", i, tl[i], same[i])
		}
	}
	other := NewTimeline(rps, 2*time.Second, jitter, rand.New(rand.NewSource(8)))
	diff := false
	for i := range tl {
		if tl[i] != other[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical jitter")
	}
}

// TestTimelineCeilCount pins the arrival count to ceil(rps·duration)
// across awkward rates.
func TestTimelineCeilCount(t *testing.T) {
	for _, tc := range []struct {
		rps float64
		dur time.Duration
	}{
		{3, time.Second}, {7, 1500 * time.Millisecond}, {0.5, 3 * time.Second}, {1000, 333 * time.Millisecond},
	} {
		tl := NewTimeline(tc.rps, tc.dur, 0.3, rand.New(rand.NewSource(1)))
		want := int(math.Ceil(tc.rps * tc.dur.Seconds()))
		if len(tl) != want {
			t.Errorf("%v rps over %v: want %d arrivals, got %d", tc.rps, tc.dur, want, len(tl))
		}
	}
}

// TestRunTimelineFakeClockDispatch drives the open-loop walker on a
// fake clock and asserts the exact dispatch timeline: every request is
// dispatched at precisely its scheduled offset, with no wall-clock
// sleeping (the whole phase runs in microseconds), and the clock ends
// at the nominal phase end.
func TestRunTimelineFakeClockDispatch(t *testing.T) {
	clock := NewFakeClock()
	start := clock.Now()
	rng := rand.New(rand.NewSource(3))
	const rps, dur = 50.0, 2 * time.Second
	tl := NewTimeline(rps, dur, 0.5, rng)
	reqs := make([]GenRequest, len(tl))
	var gotAt []time.Duration
	n := runTimeline(context.Background(), clock, tl, reqs, dur, func(i int, req GenRequest) {
		gotAt = append(gotAt, clock.Now().Sub(start))
	})
	if n != len(tl) {
		t.Fatalf("dispatched %d of %d", n, len(tl))
	}
	for i, at := range gotAt {
		if at != tl[i] {
			t.Fatalf("request %d dispatched at %v, scheduled %v", i, at, tl[i])
		}
	}
	if end := clock.Now().Sub(start); end != dur {
		t.Fatalf("phase ended at %v, want nominal %v", end, dur)
	}
	// The fake clock saw only forward sleeps; none may be negative.
	for _, d := range clock.Slept() {
		if d < 0 {
			t.Fatalf("scheduler slept a negative duration %v", d)
		}
	}
}

// TestRunTimelineCancel stops dispatch at context cancellation.
func TestRunTimelineCancel(t *testing.T) {
	clock := NewFakeClock()
	tl := NewTimeline(100, time.Second, 0, rand.New(rand.NewSource(1)))
	reqs := make([]GenRequest, len(tl))
	ctx, cancel := context.WithCancel(context.Background())
	n := runTimeline(ctx, clock, tl, reqs, time.Second, func(i int, req GenRequest) {
		if i == 9 {
			cancel()
		}
	})
	if n != 10 {
		t.Fatalf("dispatched %d requests after cancel at the 10th, want 10", n)
	}
}

// blockingTarget blocks every Do until released, for in-flight tests.
type blockingTarget struct {
	entered chan struct{}
	release chan struct{}
}

func (b *blockingTarget) Name() string { return "blocking" }
func (b *blockingTarget) Do(ctx context.Context, body []byte) TargetResult {
	b.entered <- struct{}{}
	<-b.release
	return TargetResult{Status: 200}
}

// TestExecutorShedsAtInFlightCap dispatches past the in-flight cap and
// asserts overflow arrivals are shed (counted, never queued) — the
// property that keeps the generator open-loop with bounded memory.
func TestExecutorShedsAtInFlightCap(t *testing.T) {
	tgt := &blockingTarget{entered: make(chan struct{}, 8), release: make(chan struct{})}
	collect := NewCollector(nil)
	ex := NewExecutor(tgt, RealClock(), collect, 2)
	for i := 0; i < 5; i++ {
		ex.Dispatch(context.Background(), GenRequest{Class: ClassCold})
		if i == 1 {
			// Let both slot-holders actually enter the target before
			// overflowing, so exactly 2 are in flight.
			<-tgt.entered
			<-tgt.entered
		}
	}
	close(tgt.release)
	ex.Wait()
	st := collect.ByClass()[string(ClassCold)]
	if st.Shed != 3 || st.Sent != 2 {
		t.Fatalf("want 2 sent + 3 shed, got sent=%d shed=%d", st.Sent, st.Shed)
	}
}

// TestExecutorConcurrentRecords hammers one executor from many
// dispatches to give the race detector a surface over the collector.
func TestExecutorConcurrentRecords(t *testing.T) {
	collect := NewCollector(NewConsistency())
	ex := NewExecutor(okTarget{}, RealClock(), collect, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ex.Dispatch(context.Background(), GenRequest{Class: ClassCached, Key: "k", Body: nil})
			}
		}()
	}
	wg.Wait()
	ex.Wait()
	st := collect.ByClass()[string(ClassCached)]
	if st.Sent+st.Shed != 400 {
		t.Fatalf("sent %d + shed %d != 400", st.Sent, st.Shed)
	}
}

// okTarget answers 200 with a fixed body immediately.
type okTarget struct{}

func (okTarget) Name() string { return "ok" }
func (okTarget) Do(ctx context.Context, body []byte) TargetResult {
	return TargetResult{Status: 200, Body: []byte(`{"ok":true}`)}
}
