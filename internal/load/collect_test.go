package load

import (
	"errors"
	"testing"
	"time"
)

// TestCollectorClassification walks the status table: every response
// shape must land in exactly one counter bucket.
func TestCollectorClassification(t *testing.T) {
	cases := []struct {
		name string
		res  TargetResult
		pick func(ClassStats) int64
	}{
		{"ok", TargetResult{Status: 200, Body: []byte("r")}, func(s ClassStats) int64 { return s.OK }},
		{"cache hit", TargetResult{Status: 200, CacheHit: true}, func(s ClassStats) int64 { return s.CacheHits }},
		{"rejected", TargetResult{Status: 429}, func(s ClassStats) int64 { return s.Rejected }},
		{"client error", TargetResult{Status: 400}, func(s ClassStats) int64 { return s.ClientErrors }},
		{"too large", TargetResult{Status: 413}, func(s ClassStats) int64 { return s.ClientErrors }},
		{"server error", TargetResult{Status: 500}, func(s ClassStats) int64 { return s.ServerErrors }},
		{"gateway timeout", TargetResult{Status: 504}, func(s ClassStats) int64 { return s.Timeouts }},
		{"client deadline", TargetResult{Err: errors.New("deadline"), Timeout: true}, func(s ClassStats) int64 { return s.Timeouts }},
		{"transport", TargetResult{Err: errors.New("refused")}, func(s ClassStats) int64 { return s.TransportErrors }},
	}
	for _, tc := range cases {
		c := NewCollector(nil)
		c.Record(GenRequest{Class: ClassCold}, tc.res, 2*time.Millisecond)
		st := c.ByClass()[string(ClassCold)]
		if st.Sent != 1 {
			t.Errorf("%s: sent = %d", tc.name, st.Sent)
		}
		if got := tc.pick(st); got != 1 {
			t.Errorf("%s: bucket = %d, want 1", tc.name, got)
		}
		// A request with no response must leave no latency sample.
		wantLat := int64(1)
		if tc.res.Err != nil {
			wantLat = 0
		}
		if st.Latency.Count != wantLat {
			t.Errorf("%s: latency count = %d, want %d", tc.name, st.Latency.Count, wantLat)
		}
		if tot := c.Total(); tot.Sent != 1 {
			t.Errorf("%s: total sent = %d", tc.name, tot.Sent)
		}
	}
}

// TestFrac429ExcludesMalformed pins the onset signal: malformed
// requests are rejected before the queue, so their outcomes must not
// dilute the backpressure fraction.
func TestFrac429ExcludesMalformed(t *testing.T) {
	c := NewCollector(nil)
	for i := 0; i < 8; i++ {
		c.Record(GenRequest{Class: ClassCold}, TargetResult{Status: 200}, time.Millisecond)
	}
	c.Record(GenRequest{Class: ClassCold}, TargetResult{Status: 429}, time.Millisecond)
	c.Record(GenRequest{Class: ClassCold}, TargetResult{Status: 429}, time.Millisecond)
	// A flood of malformed traffic must not move the fraction.
	for i := 0; i < 100; i++ {
		c.Record(GenRequest{Class: ClassMalformed}, TargetResult{Status: 400}, time.Millisecond)
	}
	if got, want := c.Frac429(), 0.2; got != want {
		t.Fatalf("Frac429 = %g, want %g", got, want)
	}
}

// TestFrac429Empty returns zero when nothing was sent.
func TestFrac429Empty(t *testing.T) {
	if got := NewCollector(nil).Frac429(); got != 0 {
		t.Fatalf("empty collector Frac429 = %g", got)
	}
}

// TestLatencyQuantileOrdering asserts the summary is internally
// consistent: p50 ≤ p95 ≤ p99 ≤ p999 ≤ max, mean within range.
func TestLatencyQuantileOrdering(t *testing.T) {
	c := NewCollector(nil)
	for i := 1; i <= 1000; i++ {
		c.Record(GenRequest{Class: ClassCached}, TargetResult{Status: 200}, time.Duration(i)*time.Millisecond)
	}
	lat := c.ByClass()[string(ClassCached)].Latency
	if lat.Count != 1000 {
		t.Fatalf("count = %d", lat.Count)
	}
	if !(lat.P50Ms <= lat.P95Ms && lat.P95Ms <= lat.P99Ms && lat.P99Ms <= lat.P999Ms && lat.P999Ms <= lat.MaxMs) {
		t.Fatalf("quantiles out of order: %+v", lat)
	}
	if lat.MeanMs < lat.P50Ms/2 || lat.MeanMs > lat.MaxMs {
		t.Fatalf("mean %.3f outside plausible range: %+v", lat.MeanMs, lat)
	}
}

// TestConsistencyDetectsMismatch files two different bodies for one
// key and expects the key reported once, sorted.
func TestConsistencyDetectsMismatch(t *testing.T) {
	ck := NewConsistency()
	ck.Observe("key-b", []byte("result-1"))
	ck.Observe("key-b", []byte("result-1"))
	ck.Observe("key-a", []byte("x"))
	ck.Observe("key-b", []byte("result-2"))
	rep := ck.Report()
	if rep.CheckedBodies != 4 || rep.DistinctKeys != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.MismatchedKeys) != 1 || rep.MismatchedKeys[0] != "key-b" {
		t.Fatalf("mismatched = %v", rep.MismatchedKeys)
	}
}

// TestConsistencyIdenticalBodiesPass is the happy path plus the
// String rendering both branches of the report line.
func TestConsistencyIdenticalBodiesPass(t *testing.T) {
	ck := NewConsistency()
	for i := 0; i < 5; i++ {
		ck.Observe("k", []byte("same"))
	}
	rep := ck.Report()
	if len(rep.MismatchedKeys) != 0 {
		t.Fatalf("false mismatch: %v", rep.MismatchedKeys)
	}
	if s := rep.String(); s == "" {
		t.Fatal("empty String()")
	}
	ck.Observe("k", []byte("different"))
	if s := ck.Report().String(); s == "" {
		t.Fatal("empty mismatch String()")
	}
}

// TestCollectorFeedsConsistency asserts only 200s with keys reach the
// checker — a 429 retry of a keyed request must not count as a body.
func TestCollectorFeedsConsistency(t *testing.T) {
	ck := NewConsistency()
	c := NewCollector(ck)
	c.Record(GenRequest{Class: ClassCached, Key: "k"}, TargetResult{Status: 200, Body: []byte("b")}, time.Millisecond)
	c.Record(GenRequest{Class: ClassCached, Key: "k"}, TargetResult{Status: 429}, time.Millisecond)
	c.Record(GenRequest{Class: ClassMalformed}, TargetResult{Status: 400, Body: []byte("e")}, time.Millisecond)
	rep := ck.Report()
	if rep.CheckedBodies != 1 || rep.DistinctKeys != 1 {
		t.Fatalf("checker saw %+v, want exactly the one 200 keyed body", rep)
	}
}
