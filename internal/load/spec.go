// Package load is the serving stack's load-generation harness: an
// open-loop request scheduler driving the v1 API (ppc-serve, or a
// ppc-coord front end) with a deterministic, seeded mix of request
// classes — warm cache repeats, cold inline ppctrace bodies, base64
// columnar bodies, sweep-grid cells, and malformed requests — while a
// collector tracks per-class latency percentiles, achieved-vs-offered
// RPS, and error/backpressure counts.
//
// Three modes turn the schedule into a capacity measurement:
//
//   - ramp steps the offered RPS upward until 429 backpressure onset,
//     reporting the saturation point;
//   - sweep runs a fixed RPS grid crossed with a mix grid;
//   - burst alternates a low and an overload RPS in a square wave to
//     measure recovery.
//
// Every run emits a versioned capacity report (LOAD_<n>.json, see
// docs/load.md) — the serving analogue of ppc-bench's BENCH_<n>.json —
// so serving changes are gated on measured saturation and latency
// rather than asserted throughput. The whole request sequence is a pure
// function of the spec (seed included), so two runs of the same spec
// against the same server offer byte-identical request streams.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"ppcsim"
)

// Class names one request population in the generated mix. The classes
// are chosen to exercise every serving path with its own latency
// budget: result-cache hits, fresh simulations from inline text and
// columnar bodies, a finite sweep grid that warms over time, and
// requests the boundary must reject without consuming a worker slot.
type Class string

const (
	// ClassCached repeats requests from a small fixed pool, so after each
	// pool entry's first run every repeat is a result-cache hit.
	ClassCached Class = "cached"
	// ClassCold sends a unique inline ppctrace text body per request:
	// always a cache miss, always a fresh simulation.
	ClassCold Class = "cold"
	// ClassColumnar sends a unique base64-encoded columnar binary trace
	// per request (the docs/trace-format.md wire form).
	ClassColumnar Class = "columnar"
	// ClassSweep cycles through a finite grid of bundled-trace
	// configurations — distinct canonical keys that repeat, like a sweep
	// cluster's cells landing on one worker.
	ClassSweep Class = "sweep"
	// ClassMalformed sends boundary-violating bodies (unknown fields,
	// truncated base64 columnar, oversize trace, bad algorithm name) that
	// must draw a 4xx envelope and never reach the worker pool.
	ClassMalformed Class = "malformed"
)

// Classes lists every request class in the fixed report order.
var Classes = []Class{ClassCached, ClassCold, ClassColumnar, ClassSweep, ClassMalformed}

// Mix holds the relative weights of the request classes. Weights are
// relative (they need not sum to 1); a zero-valued Mix is invalid.
type Mix struct {
	Cached    float64 `json:"cached,omitempty"`
	Cold      float64 `json:"cold,omitempty"`
	Columnar  float64 `json:"columnar,omitempty"`
	Sweep     float64 `json:"sweep,omitempty"`
	Malformed float64 `json:"malformed,omitempty"`
}

// DefaultMix is the standing request mix: mostly warm traffic, a
// quarter fresh simulations, a sliver of hostile bodies — roughly the
// shape a result-cached simulation service sees in steady state.
var DefaultMix = Mix{Cached: 55, Cold: 25, Columnar: 10, Sweep: 8, Malformed: 2}

// Weight returns the weight of one class.
func (m Mix) Weight(c Class) float64 {
	switch c {
	case ClassCached:
		return m.Cached
	case ClassCold:
		return m.Cold
	case ClassColumnar:
		return m.Columnar
	case ClassSweep:
		return m.Sweep
	case ClassMalformed:
		return m.Malformed
	}
	return 0
}

// total returns the sum of all class weights.
func (m Mix) total() float64 {
	var t float64
	for _, c := range Classes {
		t += m.Weight(c)
	}
	return t
}

// validate rejects negative weights and all-zero mixes. field prefixes
// the offending field path in errors (e.g. "Sweep.Mixes[1]").
func (m Mix) validate(field string) error {
	for _, c := range Classes {
		if w := m.Weight(c); w < 0 {
			return &ppcsim.ConfigError{Field: field, Reason: fmt.Sprintf("class %s weight must be non-negative, got %g", c, w)}
		}
	}
	if !(m.total() > 0) {
		return &ppcsim.ConfigError{Field: field, Reason: "at least one class weight must be positive"}
	}
	return nil
}

// RampSpec parameterizes ramp mode: offered RPS starts at StartRPS and
// rises by StepRPS per step of StepSeconds until either the 429
// fraction of a step reaches Onset429Fraction (saturation found) or
// MaxRPS is exceeded.
type RampSpec struct {
	StartRPS    float64 `json:"start_rps"`
	StepRPS     float64 `json:"step_rps"`
	MaxRPS      float64 `json:"max_rps"`
	StepSeconds float64 `json:"step_seconds"`
	// Onset429Fraction is the step-level 429 fraction (rejected /
	// well-formed sent) that declares backpressure onset (default 0.01).
	Onset429Fraction float64 `json:"onset_429_fraction,omitempty"`
}

// SweepSpec parameterizes sweep mode: every RPS point is run once per
// mix for SecondsPerPoint. An empty Mixes list uses the spec's top-level
// mix as the single grid row.
type SweepSpec struct {
	RPS             []float64 `json:"rps"`
	Mixes           []Mix     `json:"mixes,omitempty"`
	SecondsPerPoint float64   `json:"seconds_per_point"`
}

// BurstSpec parameterizes burst mode: Cycles repetitions of a square
// wave holding LowRPS then HighRPS for half of PeriodSeconds each. The
// low half of each cycle doubles as the recovery measurement after the
// preceding overload half.
type BurstSpec struct {
	LowRPS        float64 `json:"low_rps"`
	HighRPS       float64 `json:"high_rps"`
	PeriodSeconds float64 `json:"period_seconds"`
	Cycles        int     `json:"cycles"`
}

// SLOSpec declares the pass/fail objectives evaluated over the whole
// run. Absent fields are not checked.
type SLOSpec struct {
	// P99Ms maps a class name to its p99 latency ceiling in milliseconds,
	// evaluated per phase over phases whose 429 fraction stayed below the
	// saturation threshold (an overloaded step is a finding, not an SLO
	// breach).
	P99Ms map[string]float64 `json:"p99_ms,omitempty"`
	// MaxErrorFraction bounds (server errors + transport errors) /
	// well-formed sent over the whole run.
	MaxErrorFraction *float64 `json:"max_error_fraction,omitempty"`
}

// LoadSpec is the versioned description of one load run: the JSON
// document ppc-load -spec consumes, embedded verbatim in the resulting
// capacity report. See docs/load.md for the field vocabulary.
type LoadSpec struct {
	// Seed drives every random draw: class selection, arrival jitter, and
	// per-request body synthesis. Same seed, same spec → byte-identical
	// request sequence.
	Seed int64 `json:"seed"`
	// Mode selects ramp, sweep, or burst.
	Mode string `json:"mode"`
	// Mix is the request-class mix (default DefaultMix; sweep mode's
	// Mixes grid overrides it per point).
	Mix *Mix `json:"mix,omitempty"`
	// JitterFraction spreads each arrival uniformly within
	// [i·gap, i·gap + JitterFraction·gap) where gap = 1/RPS, keeping
	// arrivals monotone while breaking lockstep (default 0.5; 0 is an
	// exact uniform grid; must stay in [0,1]).
	JitterFraction *float64 `json:"jitter_fraction,omitempty"`
	// MaxInFlight caps concurrently outstanding requests; arrivals past
	// the cap are counted as shed rather than queued, preserving the
	// open-loop property with bounded memory (default 4096).
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// OversizeBytes sizes the malformed "oversize" body; it must exceed
	// the target server's -max-body for that sub-class to draw its 413
	// (default 256 KiB).
	OversizeBytes int `json:"oversize_bytes,omitempty"`
	// ColdRefs is the reference count of each synthesized cold/columnar
	// trace body — the knob trading per-request simulation cost against
	// body size (default 192).
	ColdRefs int `json:"cold_refs,omitempty"`
	// SkipPrime skips the warm-up pass that runs every finite-pool key
	// once before the measured phases. Measured phases then include
	// first-touch compute for the cached and sweep pools — what the
	// serving-invariant test wants, but not what a capacity ramp wants.
	SkipPrime bool `json:"skip_prime,omitempty"`

	Ramp  *RampSpec  `json:"ramp,omitempty"`
	Sweep *SweepSpec `json:"sweep,omitempty"`
	Burst *BurstSpec `json:"burst,omitempty"`
	SLO   *SLOSpec   `json:"slo,omitempty"`
}

// Modes lists the valid LoadSpec.Mode values.
var Modes = []string{"ramp", "sweep", "burst"}

// ParseLoadSpec decodes and validates a LoadSpec document. Decoding is
// strict (unknown fields are rejected, so a typoed knob fails loudly
// instead of running the wrong experiment), and every rejection is a
// *ppcsim.ConfigError naming the offending field — the same diagnostic
// shape the v1 request boundary uses.
func ParseLoadSpec(data []byte) (*LoadSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec LoadSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, &ppcsim.ConfigError{Field: "LoadSpec", Reason: fmt.Sprintf("bad JSON: %v", err)}
	}
	if dec.More() {
		return nil, &ppcsim.ConfigError{Field: "LoadSpec", Reason: "trailing data after JSON document"}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// Validate applies the boundary rules and fills no defaults (defaults
// are resolved by the accessor methods, so the spec echoed into the
// report stays exactly what the user wrote).
func (s *LoadSpec) Validate() error {
	switch s.Mode {
	case "ramp", "sweep", "burst":
	case "":
		return &ppcsim.ConfigError{Field: "Mode", Reason: "mode is required (one of ramp, sweep, burst)"}
	default:
		return &ppcsim.ConfigError{Field: "Mode", Reason: fmt.Sprintf("unknown mode %q (one of ramp, sweep, burst)", s.Mode)}
	}
	if s.Mix != nil {
		if err := s.Mix.validate("Mix"); err != nil {
			return err
		}
	}
	if s.JitterFraction != nil && (*s.JitterFraction < 0 || *s.JitterFraction > 1) {
		return &ppcsim.ConfigError{Field: "JitterFraction", Reason: fmt.Sprintf("must be in [0,1], got %g", *s.JitterFraction)}
	}
	if s.MaxInFlight < 0 {
		return &ppcsim.ConfigError{Field: "MaxInFlight", Reason: fmt.Sprintf("must be non-negative, got %d", s.MaxInFlight)}
	}
	if s.OversizeBytes < 0 {
		return &ppcsim.ConfigError{Field: "OversizeBytes", Reason: fmt.Sprintf("must be non-negative, got %d", s.OversizeBytes)}
	}
	if s.OversizeBytes > 64<<20 {
		return &ppcsim.ConfigError{Field: "OversizeBytes", Reason: fmt.Sprintf("must be at most 64 MiB, got %d", s.OversizeBytes)}
	}
	if s.ColdRefs < 0 {
		return &ppcsim.ConfigError{Field: "ColdRefs", Reason: fmt.Sprintf("must be non-negative, got %d", s.ColdRefs)}
	}
	if s.ColdRefs > 1<<20 {
		return &ppcsim.ConfigError{Field: "ColdRefs", Reason: fmt.Sprintf("must be at most %d, got %d", 1<<20, s.ColdRefs)}
	}
	switch s.Mode {
	case "ramp":
		if s.Ramp == nil {
			return &ppcsim.ConfigError{Field: "Ramp", Reason: "mode ramp requires the ramp block"}
		}
		r := s.Ramp
		if !(r.StartRPS > 0) {
			return &ppcsim.ConfigError{Field: "Ramp.StartRPS", Reason: fmt.Sprintf("must be positive, got %g", r.StartRPS)}
		}
		if !(r.StepRPS > 0) {
			return &ppcsim.ConfigError{Field: "Ramp.StepRPS", Reason: fmt.Sprintf("must be positive, got %g", r.StepRPS)}
		}
		if r.MaxRPS < r.StartRPS {
			return &ppcsim.ConfigError{Field: "Ramp.MaxRPS", Reason: fmt.Sprintf("must be at least start_rps %g, got %g", r.StartRPS, r.MaxRPS)}
		}
		if err := validSeconds("Ramp.StepSeconds", r.StepSeconds); err != nil {
			return err
		}
		if r.Onset429Fraction < 0 || r.Onset429Fraction > 1 {
			return &ppcsim.ConfigError{Field: "Ramp.Onset429Fraction", Reason: fmt.Sprintf("must be in [0,1], got %g", r.Onset429Fraction)}
		}
		if steps := (r.MaxRPS - r.StartRPS) / r.StepRPS; steps > maxPhases {
			return &ppcsim.ConfigError{Field: "Ramp.StepRPS", Reason: fmt.Sprintf("ramp would take %.0f steps (max %d); raise step_rps or lower max_rps", steps+1, maxPhases)}
		}
		if n := r.MaxRPS * r.StepSeconds; n > maxPhaseRequests {
			return &ppcsim.ConfigError{Field: "Ramp.MaxRPS", Reason: fmt.Sprintf("top step pre-generates %.0f requests (max %d); lower max_rps or step_seconds", n, maxPhaseRequests)}
		}
	case "sweep":
		if s.Sweep == nil {
			return &ppcsim.ConfigError{Field: "Sweep", Reason: "mode sweep requires the sweep block"}
		}
		w := s.Sweep
		if len(w.RPS) == 0 {
			return &ppcsim.ConfigError{Field: "Sweep.RPS", Reason: "at least one RPS point is required"}
		}
		for i, r := range w.RPS {
			if !(r > 0) {
				return &ppcsim.ConfigError{Field: fmt.Sprintf("Sweep.RPS[%d]", i), Reason: fmt.Sprintf("must be positive, got %g", r)}
			}
			if r > maxRPS {
				return &ppcsim.ConfigError{Field: fmt.Sprintf("Sweep.RPS[%d]", i), Reason: fmt.Sprintf("must be at most %g, got %g", float64(maxRPS), r)}
			}
			if w.SecondsPerPoint > 0 {
				if n := r * w.SecondsPerPoint; n > maxPhaseRequests {
					return &ppcsim.ConfigError{Field: fmt.Sprintf("Sweep.RPS[%d]", i), Reason: fmt.Sprintf("point pre-generates %.0f requests (max %d); lower rps or seconds_per_point", n, maxPhaseRequests)}
				}
			}
		}
		for i, m := range w.Mixes {
			if err := m.validate(fmt.Sprintf("Sweep.Mixes[%d]", i)); err != nil {
				return err
			}
		}
		if err := validSeconds("Sweep.SecondsPerPoint", w.SecondsPerPoint); err != nil {
			return err
		}
		if pts := len(w.RPS) * max(1, len(w.Mixes)); pts > maxPhases {
			return &ppcsim.ConfigError{Field: "Sweep", Reason: fmt.Sprintf("grid has %d points (max %d)", pts, maxPhases)}
		}
	case "burst":
		if s.Burst == nil {
			return &ppcsim.ConfigError{Field: "Burst", Reason: "mode burst requires the burst block"}
		}
		b := s.Burst
		if !(b.LowRPS > 0) {
			return &ppcsim.ConfigError{Field: "Burst.LowRPS", Reason: fmt.Sprintf("must be positive, got %g", b.LowRPS)}
		}
		if b.HighRPS < b.LowRPS {
			return &ppcsim.ConfigError{Field: "Burst.HighRPS", Reason: fmt.Sprintf("must be at least low_rps %g, got %g", b.LowRPS, b.HighRPS)}
		}
		if b.HighRPS > maxRPS {
			return &ppcsim.ConfigError{Field: "Burst.HighRPS", Reason: fmt.Sprintf("must be at most %g, got %g", float64(maxRPS), b.HighRPS)}
		}
		if err := validSeconds("Burst.PeriodSeconds", b.PeriodSeconds); err != nil {
			return err
		}
		if b.Cycles <= 0 {
			return &ppcsim.ConfigError{Field: "Burst.Cycles", Reason: fmt.Sprintf("must be positive, got %d", b.Cycles)}
		}
		if 2*b.Cycles > maxPhases {
			return &ppcsim.ConfigError{Field: "Burst.Cycles", Reason: fmt.Sprintf("%d cycles is %d phases (max %d)", b.Cycles, 2*b.Cycles, maxPhases)}
		}
		if n := b.HighRPS * b.PeriodSeconds / 2; n > maxPhaseRequests {
			return &ppcsim.ConfigError{Field: "Burst.HighRPS", Reason: fmt.Sprintf("high half-period pre-generates %.0f requests (max %d); lower high_rps or period_seconds", n, maxPhaseRequests)}
		}
	}
	if s.Ramp != nil && s.Mode != "ramp" {
		return &ppcsim.ConfigError{Field: "Ramp", Reason: fmt.Sprintf("ramp block is only valid in mode ramp, not %s", s.Mode)}
	}
	if s.Sweep != nil && s.Mode != "sweep" {
		return &ppcsim.ConfigError{Field: "Sweep", Reason: fmt.Sprintf("sweep block is only valid in mode sweep, not %s", s.Mode)}
	}
	if s.Burst != nil && s.Mode != "burst" {
		return &ppcsim.ConfigError{Field: "Burst", Reason: fmt.Sprintf("burst block is only valid in mode burst, not %s", s.Mode)}
	}
	if s.SLO != nil {
		if err := s.SLO.validate(); err != nil {
			return err
		}
	}
	// Cap the ramp's top end too, now that the block is known valid.
	if s.Mode == "ramp" && s.Ramp.MaxRPS > maxRPS {
		return &ppcsim.ConfigError{Field: "Ramp.MaxRPS", Reason: fmt.Sprintf("must be at most %g, got %g", float64(maxRPS), s.Ramp.MaxRPS)}
	}
	return nil
}

// Generation limits: a phase is fully pre-generated before its clock
// starts (open-loop arrival times must not absorb body-synthesis cost),
// so one phase is bounded to keep memory finite, and a run is bounded
// to a sane phase count.
const (
	maxRPS          = 1_000_000 // offered RPS ceiling per phase
	maxPhases       = 10_000    // phases per run
	maxPhaseSeconds = 3_600     // one phase's duration ceiling
	// maxPhaseRequests bounds RPS×seconds per phase: pre-generated
	// bodies at ~1-4 KiB each keep this under a few GiB even at the cap.
	maxPhaseRequests = 2_000_000
)

func validSeconds(field string, v float64) error {
	if !(v > 0) {
		return &ppcsim.ConfigError{Field: field, Reason: fmt.Sprintf("must be positive, got %g", v)}
	}
	if v > maxPhaseSeconds {
		return &ppcsim.ConfigError{Field: field, Reason: fmt.Sprintf("must be at most %d, got %g", maxPhaseSeconds, v)}
	}
	return nil
}

func (s *SLOSpec) validate() error {
	// Deterministic first-error selection: iterate the map in sorted key
	// order, not map order.
	keys := make([]string, 0, len(s.P99Ms))
	for k := range s.P99Ms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !validClass(k) {
			return &ppcsim.ConfigError{Field: "SLO.P99Ms", Reason: fmt.Sprintf("unknown class %q (one of %v)", k, Classes)}
		}
		if v := s.P99Ms[k]; !(v > 0) {
			return &ppcsim.ConfigError{Field: "SLO.P99Ms", Reason: fmt.Sprintf("class %s ceiling must be positive, got %g", k, v)}
		}
	}
	if s.MaxErrorFraction != nil && (*s.MaxErrorFraction < 0 || *s.MaxErrorFraction > 1) {
		return &ppcsim.ConfigError{Field: "SLO.MaxErrorFraction", Reason: fmt.Sprintf("must be in [0,1], got %g", *s.MaxErrorFraction)}
	}
	return nil
}

func validClass(name string) bool {
	for _, c := range Classes {
		if string(c) == name {
			return true
		}
	}
	return false
}

// Resolved defaults.

func (s *LoadSpec) mix() Mix {
	if s.Mix != nil {
		return *s.Mix
	}
	return DefaultMix
}

func (s *LoadSpec) jitterFraction() float64 {
	if s.JitterFraction != nil {
		return *s.JitterFraction
	}
	return 0.5
}

func (s *LoadSpec) maxInFlight() int {
	if s.MaxInFlight > 0 {
		return s.MaxInFlight
	}
	return 4096
}

func (s *LoadSpec) oversizeBytes() int {
	if s.OversizeBytes > 0 {
		return s.OversizeBytes
	}
	return 256 << 10
}

func (s *LoadSpec) coldRefs() int {
	if s.ColdRefs > 0 {
		return s.ColdRefs
	}
	return 192
}

func (s *LoadSpec) onset429Fraction() float64 {
	if s.Ramp != nil && s.Ramp.Onset429Fraction > 0 {
		return s.Ramp.Onset429Fraction
	}
	return 0.01
}
