package load

import (
	"encoding/json"
	"errors"
	"testing"

	"ppcsim"
)

// FuzzParseLoadSpec fuzzes the spec boundary: any byte string must
// either parse into a spec that validates and round-trips, or be
// rejected with a *ppcsim.ConfigError naming a field — never a panic,
// never a bare error.
func FuzzParseLoadSpec(f *testing.F) {
	seeds := []string{
		validRampJSON,
		`{"mode":"sweep","sweep":{"rps":[50,100],"seconds_per_point":2,"mixes":[{"cold":1}]}}`,
		`{"mode":"burst","burst":{"low_rps":10,"high_rps":200,"period_seconds":2,"cycles":3}}`,
		`{"seed":-1,"mode":"ramp","mix":{"malformed":1},"jitter_fraction":0,"ramp":{"start_rps":1,"step_rps":1,"max_rps":1,"step_seconds":0.001,"onset_429_fraction":1}}`,
		`{"mode":"ramp","slo":{"p99_ms":{"cached":1e-9},"max_error_fraction":1},"ramp":{"start_rps":1e6,"step_rps":1,"max_rps":1e6,"step_seconds":0.000001}}`,
		`{"mode":"ramp","oversize_bytes":67108864,"cold_refs":1048576,"ramp":{"start_rps":1,"step_rps":1,"max_rps":2,"step_seconds":1}}`,
		`{"mode":"stampede"}`,
		`{"mode":"ramp","ramp":null}`,
		`null`, `{}`, `[]`, `{"mode":`, ``, `{"mode":"ramp","ramp":{"start_rps":1,"step_rps":1,"max_rps":2,"step_seconds":1}} trailing`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseLoadSpec(data)
		if err != nil {
			var ce *ppcsim.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("rejection is %T, not a ConfigError: %v", err, err)
			}
			if ce.Field == "" {
				t.Fatalf("rejection names no field: %v", err)
			}
			return
		}
		// An accepted spec must survive a marshal → parse round trip.
		raw, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		back, err := ParseLoadSpec(raw)
		if err != nil {
			t.Fatalf("round trip rejected: %v\nspec: %s", err, raw)
		}
		if back.Mode != spec.Mode || back.Seed != spec.Seed {
			t.Fatalf("round trip changed the spec: %s", raw)
		}
		// And the generator must build for any accepted spec. Skip specs
		// whose body knobs make construction deliberately huge — the
		// limits tested here are the parser's, not the allocator's.
		if spec.oversizeBytes() > 1<<16 || spec.coldRefs() > 1024 {
			return
		}
		gen, err := NewGenerator(spec)
		if err != nil {
			t.Fatalf("accepted spec fails generation: %v\nspec: %s", err, raw)
		}
		for i := 0; i < 3; i++ {
			req := gen.Next(spec.mix())
			if len(req.Body) == 0 {
				t.Fatalf("generated empty body for class %s", req.Class)
			}
		}
	})
}
