package load

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"ppcsim"
)

func floatp(v float64) *float64 { return &v }

// validRampJSON is a minimal accepted ramp spec reused across tests.
const validRampJSON = `{"seed":7,"mode":"ramp","ramp":{"start_rps":100,"step_rps":100,"max_rps":500,"step_seconds":1}}`

// TestParseLoadSpecAccepts covers one valid document per mode.
func TestParseLoadSpecAccepts(t *testing.T) {
	for name, doc := range map[string]string{
		"ramp":  validRampJSON,
		"sweep": `{"mode":"sweep","sweep":{"rps":[50,100],"seconds_per_point":2,"mixes":[{"cold":1},{"cached":3,"malformed":1}]}}`,
		"burst": `{"mode":"burst","mix":{"cached":1},"jitter_fraction":0.25,"slo":{"p99_ms":{"cached":50},"max_error_fraction":0.01},"burst":{"low_rps":10,"high_rps":200,"period_seconds":2,"cycles":3}}`,
	} {
		spec, err := ParseLoadSpec([]byte(doc))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if spec.Mode != name {
			t.Errorf("%s: parsed mode %q", name, spec.Mode)
		}
	}
}

// TestParseLoadSpecRejects is the boundary table: every rejection must
// be a *ppcsim.ConfigError naming the offending field.
func TestParseLoadSpecRejects(t *testing.T) {
	cases := []struct {
		name  string
		doc   string
		field string
	}{
		{"bad json", `{`, "LoadSpec"},
		{"trailing data", validRampJSON + ` {"x":1}`, "LoadSpec"},
		{"unknown field", `{"mode":"ramp","turbo":true}`, "LoadSpec"},
		{"missing mode", `{"seed":1}`, "Mode"},
		{"unknown mode", `{"mode":"stampede"}`, "Mode"},
		{"negative mix weight", `{"mode":"ramp","mix":{"cold":-1},"ramp":{"start_rps":1,"step_rps":1,"max_rps":2,"step_seconds":1}}`, "Mix"},
		{"all-zero mix", `{"mode":"ramp","mix":{},"ramp":{"start_rps":1,"step_rps":1,"max_rps":2,"step_seconds":1}}`, "Mix"},
		{"jitter above one", `{"mode":"ramp","jitter_fraction":1.5,"ramp":{"start_rps":1,"step_rps":1,"max_rps":2,"step_seconds":1}}`, "JitterFraction"},
		{"negative in-flight", `{"mode":"ramp","max_in_flight":-1,"ramp":{"start_rps":1,"step_rps":1,"max_rps":2,"step_seconds":1}}`, "MaxInFlight"},
		{"oversize too big", `{"mode":"ramp","oversize_bytes":67108865,"ramp":{"start_rps":1,"step_rps":1,"max_rps":2,"step_seconds":1}}`, "OversizeBytes"},
		{"cold refs too big", `{"mode":"ramp","cold_refs":1048577,"ramp":{"start_rps":1,"step_rps":1,"max_rps":2,"step_seconds":1}}`, "ColdRefs"},
		{"ramp without block", `{"mode":"ramp"}`, "Ramp"},
		{"ramp zero start", `{"mode":"ramp","ramp":{"start_rps":0,"step_rps":1,"max_rps":2,"step_seconds":1}}`, "Ramp.StartRPS"},
		{"ramp zero step", `{"mode":"ramp","ramp":{"start_rps":1,"step_rps":0,"max_rps":2,"step_seconds":1}}`, "Ramp.StepRPS"},
		{"ramp max below start", `{"mode":"ramp","ramp":{"start_rps":10,"step_rps":1,"max_rps":5,"step_seconds":1}}`, "Ramp.MaxRPS"},
		{"ramp zero seconds", `{"mode":"ramp","ramp":{"start_rps":1,"step_rps":1,"max_rps":2,"step_seconds":0}}`, "Ramp.StepSeconds"},
		{"ramp onset above one", `{"mode":"ramp","ramp":{"start_rps":1,"step_rps":1,"max_rps":2,"step_seconds":1,"onset_429_fraction":2}}`, "Ramp.Onset429Fraction"},
		{"ramp too many steps", `{"mode":"ramp","ramp":{"start_rps":1,"step_rps":0.001,"max_rps":1000,"step_seconds":1}}`, "Ramp.StepRPS"},
		{"ramp top step too big", `{"mode":"ramp","ramp":{"start_rps":1,"step_rps":999999,"max_rps":1000000,"step_seconds":3600}}`, "Ramp.MaxRPS"},
		{"ramp rps over cap", `{"mode":"ramp","ramp":{"start_rps":999999,"step_rps":1000000,"max_rps":2000000,"step_seconds":0.001}}`, "Ramp.MaxRPS"},
		{"sweep without block", `{"mode":"sweep"}`, "Sweep"},
		{"sweep empty grid", `{"mode":"sweep","sweep":{"rps":[],"seconds_per_point":1}}`, "Sweep.RPS"},
		{"sweep zero point", `{"mode":"sweep","sweep":{"rps":[100,0],"seconds_per_point":1}}`, "Sweep.RPS[1]"},
		{"sweep bad mix row", `{"mode":"sweep","sweep":{"rps":[10],"seconds_per_point":1,"mixes":[{"cached":1},{"cold":-3}]}}`, "Sweep.Mixes[1]"},
		{"sweep long point", `{"mode":"sweep","sweep":{"rps":[10],"seconds_per_point":4000}}`, "Sweep.SecondsPerPoint"},
		{"burst without block", `{"mode":"burst"}`, "Burst"},
		{"burst high below low", `{"mode":"burst","burst":{"low_rps":100,"high_rps":50,"period_seconds":2,"cycles":1}}`, "Burst.HighRPS"},
		{"burst zero cycles", `{"mode":"burst","burst":{"low_rps":1,"high_rps":2,"period_seconds":2,"cycles":0}}`, "Burst.Cycles"},
		{"cross-mode ramp block", `{"mode":"sweep","sweep":{"rps":[10],"seconds_per_point":1},"ramp":{"start_rps":1,"step_rps":1,"max_rps":2,"step_seconds":1}}`, "Ramp"},
		{"cross-mode burst block", `{"mode":"ramp","ramp":{"start_rps":1,"step_rps":1,"max_rps":2,"step_seconds":1},"burst":{"low_rps":1,"high_rps":2,"period_seconds":2,"cycles":1}}`, "Burst"},
		{"slo unknown class", `{"mode":"ramp","ramp":{"start_rps":1,"step_rps":1,"max_rps":2,"step_seconds":1},"slo":{"p99_ms":{"warm":10}}}`, "SLO.P99Ms"},
		{"slo zero ceiling", `{"mode":"ramp","ramp":{"start_rps":1,"step_rps":1,"max_rps":2,"step_seconds":1},"slo":{"p99_ms":{"cached":0}}}`, "SLO.P99Ms"},
		{"slo bad error fraction", `{"mode":"ramp","ramp":{"start_rps":1,"step_rps":1,"max_rps":2,"step_seconds":1},"slo":{"max_error_fraction":1.5}}`, "SLO.MaxErrorFraction"},
	}
	for _, tc := range cases {
		_, err := ParseLoadSpec([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var ce *ppcsim.ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %T is not a ConfigError: %v", tc.name, err, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("%s: error field %q, want %q (%v)", tc.name, ce.Field, tc.field, err)
		}
	}
}

// TestLoadSpecRoundTrip marshals a fully-populated spec and re-parses
// it: validation must hold, and the re-marshal must be byte-identical —
// the property that keeps a report's embedded spec replayable.
func TestLoadSpecRoundTrip(t *testing.T) {
	spec := &LoadSpec{
		Seed:           42,
		Mode:           "sweep",
		Mix:            &Mix{Cached: 5, Cold: 3, Malformed: 1},
		JitterFraction: floatp(0.3),
		MaxInFlight:    128,
		OversizeBytes:  1 << 16,
		ColdRefs:       64,
		SkipPrime:      true,
		Sweep:          &SweepSpec{RPS: []float64{50, 100}, SecondsPerPoint: 1.5, Mixes: []Mix{{Cold: 1}}},
		SLO:            &SLOSpec{P99Ms: map[string]float64{"cached": 25}, MaxErrorFraction: floatp(0.02)},
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseLoadSpec(raw)
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(again) {
		t.Fatalf("round-trip changed bytes:\n%s\n%s", raw, again)
	}
}

// TestSpecDefaults pins the resolved defaults the docs promise.
func TestSpecDefaults(t *testing.T) {
	s := &LoadSpec{Mode: "ramp", Ramp: &RampSpec{StartRPS: 1, StepRPS: 1, MaxRPS: 2, StepSeconds: 1}}
	if s.mix() != DefaultMix {
		t.Errorf("default mix = %+v", s.mix())
	}
	if got := s.jitterFraction(); got != 0.5 {
		t.Errorf("default jitter = %g", got)
	}
	if got := s.maxInFlight(); got != 4096 {
		t.Errorf("default max in-flight = %d", got)
	}
	if got := s.oversizeBytes(); got != 256<<10 {
		t.Errorf("default oversize = %d", got)
	}
	if got := s.coldRefs(); got != 192 {
		t.Errorf("default cold refs = %d", got)
	}
	if got := s.onset429Fraction(); got != 0.01 {
		t.Errorf("default onset = %g", got)
	}
	s.Ramp.Onset429Fraction = 0.05
	if got := s.onset429Fraction(); got != 0.05 {
		t.Errorf("explicit onset = %g", got)
	}
}

// TestMixWeights checks the weight table covers every class and the
// default mix leans warm.
func TestMixWeights(t *testing.T) {
	m := Mix{Cached: 1, Cold: 2, Columnar: 3, Sweep: 4, Malformed: 5}
	want := map[Class]float64{ClassCached: 1, ClassCold: 2, ClassColumnar: 3, ClassSweep: 4, ClassMalformed: 5}
	for c, w := range want {
		if got := m.Weight(c); got != w {
			t.Errorf("weight(%s) = %g, want %g", c, got, w)
		}
	}
	if m.total() != 15 {
		t.Errorf("total = %g", m.total())
	}
	if DefaultMix.Cached <= DefaultMix.Cold {
		t.Error("DefaultMix should lean toward cached traffic")
	}
	if err := DefaultMix.validate("Mix"); err != nil {
		t.Errorf("DefaultMix invalid: %v", err)
	}
}

// TestConfigErrorMessageNamesField makes the diagnostics greppable: the
// rendered error must contain the field path.
func TestConfigErrorMessageNamesField(t *testing.T) {
	_, err := ParseLoadSpec([]byte(`{"mode":"sweep","sweep":{"rps":[100,-5],"seconds_per_point":1}}`))
	if err == nil {
		t.Fatal("accepted negative sweep point")
	}
	if !strings.Contains(err.Error(), "Sweep.RPS[1]") {
		t.Fatalf("error does not name the field: %v", err)
	}
}
