package disk

import (
	"math"
	"testing"
)

func TestParametricMatchesHP97560(t *testing.T) {
	// A Parametric model built from the HP 97560 geometry must behave
	// identically to the hand-written model on an arbitrary access
	// pattern.
	p, err := NewParametric(HP97560Geometry())
	if err != nil {
		t.Fatal(err)
	}
	h := NewHP97560()
	nowP, nowH := 0.0, 0.0
	lbn := int64(1)
	for i := 0; i < 2000; i++ {
		lbn = (lbn*1103515245 + 12345) % 1_500_000
		if lbn < 0 {
			lbn = -lbn
		}
		if i%3 != 0 {
			lbn = (lbn + 1) % 1_500_000 // mix in sequential-ish steps
		}
		sp := p.Service(lbn, nowP)
		sh := h.Service(lbn, nowH)
		if math.Abs(sp-sh) > 1e-9 {
			t.Fatalf("step %d lbn %d: parametric %g != hp97560 %g", i, lbn, sp, sh)
		}
		nowP += sp + 0.25
		nowH += sh + 0.25
	}
}

func TestParametricValidation(t *testing.T) {
	bad := []Geometry{
		{},
		func() Geometry { g := HP97560Geometry(); g.SectorsPerTrack = 0; return g }(),
		func() Geometry { g := HP97560Geometry(); g.RPM = 0; return g }(),
		func() Geometry { g := HP97560Geometry(); g.Cylinders = -1; return g }(),
		func() Geometry { g := HP97560Geometry(); g.CacheBytes = -5; return g }(),
		func() Geometry { g := HP97560Geometry(); g.BusMBPerSec = 0; return g }(),
	}
	for i, g := range bad {
		if _, err := NewParametric(g); err == nil {
			t.Errorf("geometry %d should be rejected", i)
		}
	}
	if _, err := NewParametric(HP97560Geometry()); err != nil {
		t.Errorf("HP geometry rejected: %v", err)
	}
}

func TestParametricNoReadahead(t *testing.T) {
	g := HP97560Geometry()
	g.CacheBytes = 0
	g.BusMBPerSec = 0 // allowed when the cache is disabled
	m, err := NewParametric(g)
	if err != nil {
		t.Fatal(err)
	}
	now := m.Service(100, 0)
	// With no readahead cache, a re-read after idle time still pays the
	// media transfer (never the bus-only fast path).
	svc := m.Service(101, now+200)
	if svc < MediaTransferMs(BlockSectors)-1e-9 {
		t.Errorf("no-cache sequential read cost %g, want >= media %g", svc, MediaTransferMs(BlockSectors))
	}
}

func TestParametricFasterDrive(t *testing.T) {
	// A drive spinning twice as fast with a flatter seek curve must give
	// strictly lower average service on a random workload.
	fast := HP97560Geometry()
	fast.RPM *= 2
	fast.SeekConst /= 2
	fast.SeekSqrt /= 2
	fast.SeekLinConst /= 2
	fast.SeekLin /= 2
	slowM, _ := NewParametric(HP97560Geometry())
	fastM, _ := NewParametric(fast)
	sumS, sumF := 0.0, 0.0
	nowS, nowF := 0.0, 0.0
	lbn := int64(7)
	for i := 0; i < 500; i++ {
		lbn = (lbn*48271 + 11) % 1_000_000
		s := slowM.Service(lbn, nowS)
		f := fastM.Service(lbn, nowF)
		sumS += s
		sumF += f
		nowS += s + 1
		nowF += f + 1
	}
	if sumF >= sumS {
		t.Errorf("faster drive total %g >= slower %g", sumF, sumS)
	}
}

func TestParametricResetAndGeometry(t *testing.T) {
	m, _ := NewParametric(HP97560Geometry())
	a := m.Service(0, 0)
	m.Service(1, a)
	m.Reset()
	if b := m.Service(0, 0); math.Abs(a-b) > 1e-9 {
		t.Errorf("post-reset service %g, want %g", b, a)
	}
	if m.Geometry().Cylinders != Cylinders {
		t.Error("Geometry() lost parameters")
	}
}
