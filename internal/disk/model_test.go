package disk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidateGeometry(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSeekCurve(t *testing.T) {
	if SeekMs(0) != 0 {
		t.Errorf("zero-distance seek = %g, want 0", SeekMs(0))
	}
	// Short-seek form: 3.24 + 0.400*sqrt(d).
	if got, want := SeekMs(100), 3.24+0.400*10.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("SeekMs(100) = %g, want %g", got, want)
	}
	// Long-seek form: 8.00 + 0.008*d.
	if got, want := SeekMs(1000), 8.00+8.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("SeekMs(1000) = %g, want %g", got, want)
	}
	if SeekMs(-100) != SeekMs(100) {
		t.Error("seek must be symmetric in distance")
	}
	// The curve should be monotone nondecreasing.
	prev := 0.0
	for d := 0; d <= Cylinders; d++ {
		s := SeekMs(d)
		if s < prev-1e-9 {
			t.Fatalf("seek not monotone at distance %d: %g < %g", d, s, prev)
		}
		prev = s
	}
	// Paper Table 1: maximum seek within a 100-cylinder group is 7.24 ms.
	if got := SeekMs(100); math.Abs(got-7.24) > 1e-9 {
		t.Errorf("SeekMs(100) = %g, want 7.24 (paper section 3.2)", got)
	}
}

func TestTransferTimes(t *testing.T) {
	// 16 sectors of a 72-sector track at 4002 rpm: ~3.33 ms.
	if math.Abs(BlockMediaMs-16.0/72.0*RevolutionMs) > 1e-9 {
		t.Errorf("BlockMediaMs = %g", BlockMediaMs)
	}
	if BlockMediaMs < 3.2 || BlockMediaMs > 3.4 {
		t.Errorf("BlockMediaMs = %g, want ~3.33", BlockMediaMs)
	}
	// 8192 bytes over a 10 MB/s bus: ~0.82 ms.
	if BlockBusMs < 0.8 || BlockBusMs > 0.85 {
		t.Errorf("BlockBusMs = %g, want ~0.82", BlockBusMs)
	}
}

func TestHP97560Sequential(t *testing.T) {
	m := NewHP97560()
	now := 0.0
	now += m.Service(0, now) // cold access pays positioning
	for lbn := int64(1); lbn < 50; lbn++ {
		svc := m.Service(lbn, now)
		now += svc
		// Back-to-back sequential reads cost about the media transfer
		// time (plus an occasional cylinder crossing).
		if svc > BlockMediaMs+SeekMs(1)+1e-9 {
			t.Fatalf("sequential block %d cost %g ms, want <= media+headswitch", lbn, svc)
		}
		if svc < BlockBusMs-1e-9 {
			t.Fatalf("sequential block %d cost %g ms, below bus transfer", lbn, svc)
		}
	}
}

func TestHP97560ReadaheadCacheHit(t *testing.T) {
	m := NewHP97560()
	now := 0.0
	now += m.Service(100, now)
	// Leave the drive idle long enough for readahead to fill, then
	// re-request the next sequential block: it should be served from the
	// cache at bus speed.
	now += 100.0
	svc := m.Service(101, now)
	if math.Abs(svc-BlockBusMs) > 1e-9 {
		t.Errorf("readahead hit cost %g ms, want bus transfer %g", svc, BlockBusMs)
	}
}

func TestHP97560RandomAccessCost(t *testing.T) {
	m := NewHP97560()
	now := 0.0
	now += m.Service(0, now)
	// A far-away random access pays seek + rotation + transfer: strictly
	// more than the transfer, at most seek_max + full rotation + transfer.
	svc := m.Service(50000, now)
	if svc <= BlockMediaMs {
		t.Errorf("random access cost %g ms, want > media transfer", svc)
	}
	max := SeekMs(Cylinders) + RevolutionMs + BlockMediaMs
	if svc > max {
		t.Errorf("random access cost %g ms, want <= %g", svc, max)
	}
}

func TestHP97560RotationalPosition(t *testing.T) {
	// The rotational delay depends on when the request arrives: issuing
	// the same access pattern at different times must change the cost.
	costs := map[float64]bool{}
	for _, t0 := range []float64{0, 1, 2, 3, 5, 7, 11} {
		m := NewHP97560()
		m.Service(0, t0)
		costs[m.Service(5000, t0+30)] = true
	}
	if len(costs) < 2 {
		t.Error("rotational latency should vary with arrival time")
	}
}

func TestHP97560Reset(t *testing.T) {
	m := NewHP97560()
	a := m.Service(0, 0)
	m.Service(1, a)
	m.Reset()
	b := m.Service(0, 0)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("service after reset %g, want %g (same as cold)", b, a)
	}
}

func TestSimpleModel(t *testing.T) {
	m := NewSimple()
	svc := m.Service(0, 0)
	if math.Abs(svc-(11.0+BlockMediaMs)) > 1e-9 {
		t.Errorf("cold simple access = %g", svc)
	}
	if got := m.Service(1, svc); math.Abs(got-BlockMediaMs) > 1e-9 {
		t.Errorf("sequential simple access = %g, want %g", got, BlockMediaMs)
	}
	if got := m.Service(100, 20); math.Abs(got-(11.0+BlockMediaMs)) > 1e-9 {
		t.Errorf("random simple access = %g", got)
	}
	m.Reset()
	if got := m.Service(1, 0); math.Abs(got-(11.0+BlockMediaMs)) > 1e-9 {
		t.Errorf("post-reset simple access = %g, want positioning again", got)
	}
}

// TestServicePositive: every service time is strictly positive and finite
// for arbitrary request positions and times.
func TestServicePositive(t *testing.T) {
	m := NewHP97560()
	now := 0.0
	f := func(lbnRaw uint32, gapRaw uint16) bool {
		lbn := int64(lbnRaw % 2_000_000)
		now += float64(gapRaw) / 100.0
		svc := m.Service(lbn, now)
		now += svc
		return svc > 0 && !math.IsNaN(svc) && !math.IsInf(svc, 0) && svc < 60
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestHP97560AverageAccessTime pins the model to Table 1 of the paper:
// the HP 97560's average access time for an 8 Kbyte transfer is 22.8 ms.
// Uniformly random single-block reads across the whole drive should
// average close to that (seek to a uniformly random cylinder, rotational
// latency, media transfer).
func TestHP97560AverageAccessTime(t *testing.T) {
	m := NewHP97560()
	rng := rand.New(rand.NewSource(42))
	maxLBN := int64(Cylinders) * sectorsPerCylinder / BlockSectors
	now := 0.0
	now += m.Service(rng.Int63n(maxLBN), now)
	sum, n := 0.0, 0
	for i := 0; i < 4000; i++ {
		svc := m.Service(rng.Int63n(maxLBN), now)
		now += svc + 1.0 // small think time between requests
		sum += svc
		n++
	}
	avg := sum / float64(n)
	if avg < 19 || avg > 27 {
		t.Errorf("average random 8K access = %.2f ms, want ~22.8 (paper Table 1)", avg)
	}
}
