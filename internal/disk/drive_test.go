package disk

import (
	"testing"

	"ppcsim/internal/layout"
)

// constModel serves every request in exactly 1 ms, recording order.
type constModel struct{ order []int64 }

func (m *constModel) Service(lbn int64, now float64) float64 {
	m.order = append(m.order, lbn)
	return 1.0
}
func (m *constModel) Reset() { m.order = nil }

// drain completes requests until the drive idles, returning completion
// order.
func drain(dr *Drive) []layout.BlockID {
	var got []layout.BlockID
	for dr.Busy() {
		r := dr.Complete(dr.BusyEnd())
		got = append(got, r.Block)
	}
	return got
}

func TestFCFSOrder(t *testing.T) {
	dr := NewDrive(&constModel{}, FCFS)
	for i, lbn := range []int64{50, 10, 30, 20} {
		dr.Enqueue(&Request{Block: layout.BlockID(i), LBN: lbn}, 0)
	}
	got := drain(dr)
	want := []layout.BlockID{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FCFS order %v, want %v", got, want)
		}
	}
}

func TestCSCANOrder(t *testing.T) {
	dr := NewDrive(&constModel{}, CSCAN)
	// First request (LBN 50) starts service immediately; the rest queue
	// and are served in ascending LBN from the head position (50), then
	// wrap: 50, then 60, 90, wrap to 10, 30.
	for i, lbn := range []int64{50, 90, 10, 60, 30} {
		dr.Enqueue(&Request{Block: layout.BlockID(i), LBN: lbn}, 0)
	}
	got := drain(dr)
	want := []layout.BlockID{0, 3, 1, 2, 4} // LBNs 50, 60, 90, 10, 30
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CSCAN order %v, want %v", got, want)
		}
	}
}

func TestCSCANTieBreaksByArrival(t *testing.T) {
	dr := NewDrive(&constModel{}, CSCAN)
	dr.Enqueue(&Request{Block: 9, LBN: 5}, 0)
	dr.Enqueue(&Request{Block: 1, LBN: 7}, 0)
	dr.Enqueue(&Request{Block: 2, LBN: 7}, 0)
	got := drain(dr)
	want := []layout.BlockID{9, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestEveryRequestServedOnce(t *testing.T) {
	for _, disc := range []Discipline{FCFS, CSCAN} {
		dr := NewDrive(&constModel{}, disc)
		seen := map[layout.BlockID]int{}
		n := 200
		now := 0.0
		for i := 0; i < n; i++ {
			dr.Enqueue(&Request{Block: layout.BlockID(i), LBN: int64((i * 37) % 100)}, now)
			if i%3 == 0 && dr.Busy() {
				now = dr.BusyEnd()
				seen[dr.Complete(now).Block]++
			}
		}
		for dr.Busy() {
			now = dr.BusyEnd()
			seen[dr.Complete(now).Block]++
		}
		if len(seen) != n {
			t.Fatalf("%v: served %d distinct requests, want %d", disc, len(seen), n)
		}
		for b, c := range seen {
			if c != 1 {
				t.Fatalf("%v: request %d served %d times", disc, b, c)
			}
		}
		if dr.Completed() != int64(n) {
			t.Fatalf("%v: Completed() = %d, want %d", disc, dr.Completed(), n)
		}
	}
}

func TestDriveStatsAndReset(t *testing.T) {
	dr := NewDrive(&constModel{}, FCFS)
	dr.Enqueue(&Request{Block: 0, LBN: 0}, 0)
	dr.Enqueue(&Request{Block: 1, LBN: 1}, 0)
	if dr.Outstanding() != 2 || dr.QueueLen() != 1 || !dr.Busy() {
		t.Fatalf("outstanding=%d queue=%d busy=%v", dr.Outstanding(), dr.QueueLen(), dr.Busy())
	}
	drain(dr)
	if dr.BusyTime() != 2.0 {
		t.Errorf("busy time %g, want 2", dr.BusyTime())
	}
	if dr.MeanServiceMs() != 1.0 {
		t.Errorf("mean service %g, want 1", dr.MeanServiceMs())
	}
	dr.Reset()
	if dr.Busy() || dr.Outstanding() != 0 || dr.Completed() != 0 || dr.BusyTime() != 0 || dr.MeanServiceMs() != 0 {
		t.Error("reset did not clear drive state")
	}
}

func TestCompleteIdleReturnsNil(t *testing.T) {
	dr := NewDrive(&constModel{}, FCFS)
	if dr.Complete(0) != nil {
		t.Error("completing an idle drive should return nil")
	}
}

func TestDisciplineString(t *testing.T) {
	if CSCAN.String() != "CSCAN" || FCFS.String() != "FCFS" {
		t.Error("discipline names wrong")
	}
	if Discipline(9).String() == "" {
		t.Error("unknown discipline should still render")
	}
}

func TestRequestServiceMsRecorded(t *testing.T) {
	dr := NewDrive(&constModel{}, FCFS)
	dr.Enqueue(&Request{Block: 0, LBN: 0}, 0)
	r := dr.Complete(dr.BusyEnd())
	if r.ServiceMs != 1.0 {
		t.Errorf("ServiceMs = %g, want 1", r.ServiceMs)
	}
}
