package disk

import (
	"fmt"
	"math"
)

// Geometry parameterizes a Parametric drive model, so workloads can be
// simulated against hardware other than the HP 97560. The zero value is
// not usable; see HP97560Geometry for a complete example.
type Geometry struct {
	// SectorsPerTrack and TracksPerCylinder define the per-cylinder
	// capacity (512-byte sectors).
	SectorsPerTrack   int
	TracksPerCylinder int
	// Cylinders is the seek range.
	Cylinders int
	// RPM is the rotational speed.
	RPM float64
	// SeekConst/SeekSqrt define short seeks: SeekConst + SeekSqrt*sqrt(d)
	// milliseconds for d < SeekBoundary cylinders.
	SeekConst float64
	SeekSqrt  float64
	// SeekLinConst/SeekLin define long seeks: SeekLinConst + SeekLin*d.
	SeekBoundary int
	SeekLinConst float64
	SeekLin      float64
	// CacheBytes is the readahead cache capacity (0 disables readahead).
	CacheBytes int
	// BusMBPerSec is the interface transfer rate for cache hits.
	BusMBPerSec float64
}

// HP97560Geometry returns the geometry of the paper's drive; a
// Parametric model built from it behaves like NewHP97560.
func HP97560Geometry() Geometry {
	return Geometry{
		SectorsPerTrack:   SectorsPerTrack,
		TracksPerCylinder: TracksPerCylinder,
		Cylinders:         Cylinders,
		RPM:               RPM,
		SeekConst:         3.24,
		SeekSqrt:          0.400,
		SeekBoundary:      383,
		SeekLinConst:      8.00,
		SeekLin:           0.008,
		CacheBytes:        CacheBytes,
		BusMBPerSec:       BusMBPerSec,
	}
}

// Validate checks the geometry for usability.
func (g Geometry) Validate() error {
	switch {
	case g.SectorsPerTrack <= 0:
		return fmt.Errorf("disk: SectorsPerTrack %d", g.SectorsPerTrack)
	case g.TracksPerCylinder <= 0:
		return fmt.Errorf("disk: TracksPerCylinder %d", g.TracksPerCylinder)
	case g.Cylinders <= 0:
		return fmt.Errorf("disk: Cylinders %d", g.Cylinders)
	case g.RPM <= 0:
		return fmt.Errorf("disk: RPM %g", g.RPM)
	case g.SeekBoundary < 0:
		return fmt.Errorf("disk: SeekBoundary %d", g.SeekBoundary)
	case g.CacheBytes < 0:
		return fmt.Errorf("disk: CacheBytes %d", g.CacheBytes)
	case g.CacheBytes > 0 && g.BusMBPerSec <= 0:
		return fmt.Errorf("disk: readahead cache needs a positive bus rate")
	}
	return nil
}

// revolutionMs is the rotation period.
func (g Geometry) revolutionMs() float64 { return 60000.0 / g.RPM }

// seekMs evaluates the two-segment seek curve.
func (g Geometry) seekMs(dist int) float64 {
	if dist < 0 {
		dist = -dist
	}
	switch {
	case dist == 0:
		return 0
	case dist < g.SeekBoundary:
		return g.SeekConst + g.SeekSqrt*math.Sqrt(float64(dist))
	default:
		return g.SeekLinConst + g.SeekLin*float64(dist)
	}
}

// Parametric is a drive model with the same structure as the HP 97560
// model (seek curve, rotational position, media/bus transfer, readahead
// cache) but arbitrary parameters.
type Parametric struct {
	g Geometry

	initialized bool
	headCyl     int
	lastEnd     int64
	idleFrom    float64
	cacheLo     int64
	cacheHi     int64
	record      bool
	last        Breakdown
}

// LastBreakdown implements BreakdownModel.
func (m *Parametric) LastBreakdown() Breakdown { return m.last }

// RecordBreakdown implements BreakdownModel.
func (m *Parametric) RecordBreakdown(on bool) { m.record = on }

// NewParametric builds a drive model from the geometry.
func NewParametric(g Geometry) (*Parametric, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Parametric{g: g}, nil
}

// Geometry returns the model's parameters.
func (m *Parametric) Geometry() Geometry { return m.g }

// Reset implements Model.
func (m *Parametric) Reset() {
	g := m.g
	*m = Parametric{g: g, record: m.record}
}

// Service implements Model.
func (m *Parametric) Service(lbn int64, now float64) float64 {
	g := m.g
	rev := g.revolutionMs()
	secPerCyl := int64(g.SectorsPerTrack * g.TracksPerCylinder)
	cacheSec := int64(g.CacheBytes / SectorSize)
	mediaMs := float64(BlockSectors) / float64(g.SectorsPerTrack) * rev
	busMs := math.Inf(1)
	if g.BusMBPerSec > 0 {
		busMs = float64(BlockSectors*SectorSize) / (g.BusMBPerSec * 1e6) * 1000.0
	}

	start := lbn * BlockSectors
	end := start + BlockSectors
	cyl := int(start / secPerCyl % int64(g.Cylinders))

	if !m.initialized {
		m.initialized = true
		m.headCyl = cyl
		m.lastEnd = end
		seek := g.seekMs(g.Cylinders / 3)
		if m.record {
			m.last = Breakdown{SeekMs: seek, RotationMs: rev / 2, TransferMs: mediaMs}
		}
		t := seek + rev/2 + mediaMs
		m.idleFrom = now + t
		m.cacheLo, m.cacheHi = start, end
		return t
	}
	if idle := now - m.idleFrom; idle > 0 && cacheSec > 0 {
		grown := int64(idle / rev * float64(g.SectorsPerTrack))
		m.cacheHi += grown
		if m.cacheHi > m.cacheLo+cacheSec {
			m.cacheHi = m.cacheLo + cacheSec
		}
	}
	var t float64
	switch {
	case cacheSec > 0 && start >= m.cacheLo && end <= m.cacheHi:
		t = busMs
		if m.record {
			m.last = Breakdown{TransferMs: busMs}
		}
	case start == m.lastEnd:
		t = mediaMs
		var seek float64
		if cyl != m.headCyl {
			seek = g.seekMs(1)
			t += seek
		}
		if m.record {
			m.last = Breakdown{SeekMs: seek, TransferMs: mediaMs}
		}
	default:
		seek := g.seekMs(cyl - m.headCyl)
		arrive := now + seek
		angle := math.Mod(arrive, rev) / rev * float64(g.SectorsPerTrack)
		target := float64(start % int64(g.SectorsPerTrack))
		rot := target - angle
		if rot < 0 {
			rot += float64(g.SectorsPerTrack)
		}
		rotMs := rot / float64(g.SectorsPerTrack) * rev
		if m.record {
			m.last = Breakdown{SeekMs: seek, RotationMs: rotMs, TransferMs: mediaMs}
		}
		t = seek + rotMs + mediaMs
	}
	m.headCyl = cyl
	m.lastEnd = end
	m.idleFrom = now + t
	if start >= m.cacheLo && start <= m.cacheHi {
		if end > m.cacheHi {
			m.cacheHi = end
		}
	} else {
		m.cacheLo, m.cacheHi = start, end
	}
	if cacheSec > 0 && m.cacheHi-m.cacheLo > cacheSec {
		m.cacheLo = m.cacheHi - cacheSec
	}
	return t
}
