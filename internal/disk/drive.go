package disk

import (
	"fmt"

	"ppcsim/internal/layout"
)

// Discipline selects the driver-level head-scheduling policy.
type Discipline int

const (
	// CSCAN serves queued requests in increasing block order, wrapping
	// around to the lowest block when the sweep passes the end. The paper
	// uses CSCAN by default because it always scans in the direction the
	// drive reads, keeping the readahead cache effective.
	CSCAN Discipline = iota
	// FCFS serves queued requests in arrival order.
	FCFS
)

// String implements fmt.Stringer.
func (d Discipline) String() string {
	switch d {
	case CSCAN:
		return "CSCAN"
	case FCFS:
		return "FCFS"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Request is one outstanding block transfer handed to a drive.
type Request struct {
	Block      layout.BlockID
	LBN        int64 // logical block number within the drive
	EnqueuedAt float64
	// Write marks a write-behind update (no process stall depends on it).
	Write bool
	// ServiceMs is the modeled service time, filled in when the request
	// enters service.
	ServiceMs float64
	seq       int64 // arrival order, for FCFS
}

// Drive is one disk of the array: a service model plus a queue of
// outstanding requests reordered by the configured discipline. Fetches to
// a single drive are serialized; the engine runs one Drive per array slot.
type Drive struct {
	model      Model
	breakdown  BreakdownModel // model, when it can decompose service times
	discipline Discipline

	// OnStart, if set, is invoked as each request enters service with the
	// decomposition of its service time (the whole service time is
	// reported as transfer when the model cannot decompose). The engine
	// uses it to emit fetch-started observability events. The breakdown is
	// passed by value rather than stored on Request so the unobserved fast
	// path keeps the smaller request allocation.
	OnStart func(r *Request, b Breakdown, now float64)

	queue   []*Request
	current *Request
	busyEnd float64
	headLBN int64
	nextSeq int64

	// Statistics.
	busyTime      float64
	completed     int64
	totalService  float64
	totalResponse float64
}

// NewDrive returns an idle drive using the given model and discipline.
func NewDrive(model Model, d Discipline) *Drive {
	bm, _ := model.(BreakdownModel)
	return &Drive{model: model, breakdown: bm, discipline: d}
}

// Reset returns the drive to its initial idle state and clears statistics.
func (dr *Drive) Reset() {
	dr.model.Reset()
	dr.queue = dr.queue[:0]
	dr.current = nil
	dr.busyEnd = 0
	dr.headLBN = 0
	dr.nextSeq = 0
	dr.busyTime = 0
	dr.completed = 0
	dr.totalService = 0
	dr.totalResponse = 0
}

// EnableBreakdown turns on per-request service-time decomposition in the
// underlying model (when it supports it). The engine calls this when an
// observer is installed; recording is off otherwise so the hot path skips
// the extra stores.
func (dr *Drive) EnableBreakdown() {
	if dr.breakdown != nil {
		dr.breakdown.RecordBreakdown(true)
	}
}

// Busy reports whether a request is in service.
func (dr *Drive) Busy() bool { return dr.current != nil }

// QueueLen returns the number of requests waiting (not counting the one in
// service).
func (dr *Drive) QueueLen() int { return len(dr.queue) }

// Outstanding returns the total number of requests at the drive, including
// the one in service.
func (dr *Drive) Outstanding() int {
	n := len(dr.queue)
	if dr.current != nil {
		n++
	}
	return n
}

// BusyEnd returns the completion time of the in-service request. It is
// only meaningful when Busy() is true.
func (dr *Drive) BusyEnd() float64 { return dr.busyEnd }

// Current returns the in-service request, or nil.
func (dr *Drive) Current() *Request { return dr.current }

// Enqueue adds a request at time now and starts it immediately if the
// drive is idle.
func (dr *Drive) Enqueue(r *Request, now float64) {
	r.seq = dr.nextSeq
	dr.nextSeq++
	r.EnqueuedAt = now
	dr.queue = append(dr.queue, r)
	if dr.current == nil {
		dr.startNext(now)
	}
}

// pick removes and returns the next request per the discipline.
func (dr *Drive) pick() *Request {
	best := -1
	switch dr.discipline {
	case FCFS:
		for i, r := range dr.queue {
			if best < 0 || r.seq < dr.queue[best].seq {
				best = i
			}
		}
	case CSCAN:
		// Smallest LBN at or past the head; wrap to the global smallest.
		wrap := -1
		for i, r := range dr.queue {
			if r.LBN >= dr.headLBN {
				if best < 0 || r.LBN < dr.queue[best].LBN ||
					(r.LBN == dr.queue[best].LBN && r.seq < dr.queue[best].seq) {
					best = i
				}
			}
			if wrap < 0 || r.LBN < dr.queue[wrap].LBN ||
				(r.LBN == dr.queue[wrap].LBN && r.seq < dr.queue[wrap].seq) {
				wrap = i
			}
		}
		if best < 0 {
			best = wrap
		}
	}
	r := dr.queue[best]
	dr.queue[best] = dr.queue[len(dr.queue)-1]
	dr.queue = dr.queue[:len(dr.queue)-1]
	return r
}

func (dr *Drive) startNext(now float64) {
	if len(dr.queue) == 0 {
		return
	}
	r := dr.pick()
	svc := dr.model.Service(r.LBN, now)
	r.ServiceMs = svc
	dr.current = r
	dr.busyEnd = now + svc
	dr.headLBN = r.LBN
	dr.busyTime += svc
	dr.totalService += svc
	if dr.OnStart != nil {
		var b Breakdown
		if dr.breakdown != nil {
			b = dr.breakdown.LastBreakdown()
		} else {
			b.TransferMs = svc
		}
		dr.OnStart(r, b, now)
	}
}

// Complete finishes the in-service request (the caller must have advanced
// time to BusyEnd()) and starts the next queued request, if any. It
// returns the finished request.
func (dr *Drive) Complete(now float64) *Request {
	r := dr.current
	if r == nil {
		return nil
	}
	dr.current = nil
	dr.completed++
	dr.totalResponse += now - r.EnqueuedAt
	dr.startNext(now)
	return r
}

// Completed returns the number of requests fully serviced.
func (dr *Drive) Completed() int64 { return dr.completed }

// BusyTime returns the total time the drive has spent servicing requests.
func (dr *Drive) BusyTime() float64 { return dr.busyTime }

// MeanServiceMs returns the average per-request service time.
func (dr *Drive) MeanServiceMs() float64 {
	if dr.completed == 0 {
		return 0
	}
	return dr.totalService / float64(dr.completed)
}

// MeanResponseMs returns the average request response time (queueing plus
// service).
func (dr *Drive) MeanResponseMs() float64 {
	if dr.completed == 0 {
		return 0
	}
	return dr.totalResponse / float64(dr.completed)
}
