// Package disk models the storage devices of the simulation: an
// HP 97560-like disk drive (the drive simulated by the paper's UW
// simulator, after Ruemmler & Wilkes and Kotz et al.) together with the
// driver-level request queueing and head-scheduling disciplines (CSCAN and
// FCFS) that the paper shows are crucial to prefetching performance.
//
// All times are in milliseconds.
package disk

import (
	"fmt"
	"math"
)

// Geometry and timing constants for the HP 97560, from Table 1 of the
// paper and Ruemmler & Wilkes, "An Introduction to Disk Drive Modelling".
const (
	SectorSize        = 512
	SectorsPerTrack   = 72
	TracksPerCylinder = 19
	Cylinders         = 1962
	RPM               = 4002
	CacheBytes        = 128 * 1024 // on-drive readahead cache
	BusMBPerSec       = 10.0       // SCSI-II transfer rate

	// BlockSectors is the number of sectors in one 8 Kbyte file block.
	BlockSectors = 8192 / SectorSize

	// RevolutionMs is the rotation period: 60,000 ms/min / 4002 rpm.
	RevolutionMs = 60000.0 / RPM

	// sectorsPerCylinder is the number of sectors under all heads of one
	// cylinder.
	sectorsPerCylinder = SectorsPerTrack * TracksPerCylinder

	// cacheSectors is the capacity of the readahead cache in sectors.
	cacheSectors = CacheBytes / SectorSize
)

// Model computes the service time of one block-sized read. Implementations
// are stateful (they track head position, rotation and readahead cache
// contents) and are owned by exactly one Drive.
type Model interface {
	// Service returns the time to read the BlockSectors-long extent that
	// starts at logical block number lbn (in 8K blocks), given that the
	// request is started at time now. Implementations update their
	// internal head/cache state.
	Service(lbn int64, now float64) float64
	// Reset returns the model to its initial state.
	Reset()
}

// Breakdown decomposes one service time into its physical components.
// The components sum to the service time.
type Breakdown struct {
	SeekMs     float64
	RotationMs float64
	TransferMs float64
}

// BreakdownModel is implemented by models that can decompose their most
// recent Service result. Drives expose the decomposition on each Request
// for observability; models that cannot decompose report the whole
// service time as transfer.
type BreakdownModel interface {
	Model
	// LastBreakdown returns the decomposition of the last Service call.
	// It is meaningful only after RecordBreakdown(true).
	LastBreakdown() Breakdown
	// RecordBreakdown turns decomposition recording on or off. It is off
	// by default so unobserved runs skip the extra stores in Service.
	RecordBreakdown(on bool)
}

// HP97560 is a disk-accurate model of the HP 97560 drive: a two-segment
// seek-time curve, rotational latency derived from the modeled angular
// position of the platter, media-rate transfer, and a readahead cache that
// serves sequential re-reads at SCSI bus speed and sequential
// continuations at media speed without seek or rotational delay.
type HP97560 struct {
	initialized bool
	headCyl     int     // cylinder the head is parked over
	lastEnd     int64   // linear sector just past the previous request
	idleFrom    float64 // completion time of the previous request
	cacheLo     int64   // readahead cache window [cacheLo, cacheHi)
	cacheHi     int64
	record      bool      // record per-call decompositions into last
	last        Breakdown // decomposition of the last Service call
}

// LastBreakdown implements BreakdownModel.
func (m *HP97560) LastBreakdown() Breakdown { return m.last }

// RecordBreakdown implements BreakdownModel.
func (m *HP97560) RecordBreakdown(on bool) { m.record = on }

// NewHP97560 returns a fresh HP 97560 drive model.
func NewHP97560() *HP97560 { return &HP97560{} }

// Reset implements Model.
func (m *HP97560) Reset() { *m = HP97560{record: m.record} }

// SeekMs returns the HP 97560 seek time for a move of dist cylinders
// (Ruemmler & Wilkes): 3.24 + 0.400*sqrt(d) ms for short seeks and
// 8.00 + 0.008*d ms for seeks of at least 383 cylinders. A zero-distance
// seek is free.
func SeekMs(dist int) float64 {
	if dist < 0 {
		dist = -dist
	}
	switch {
	case dist == 0:
		return 0
	case dist < 383:
		return 3.24 + 0.400*math.Sqrt(float64(dist))
	default:
		return 8.00 + 0.008*float64(dist)
	}
}

// MediaTransferMs is the time for the platter to pass n sectors under the
// head.
func MediaTransferMs(n int) float64 {
	return float64(n) / SectorsPerTrack * RevolutionMs
}

// BusTransferMs is the time to move n sectors over the SCSI bus.
func BusTransferMs(n int) float64 {
	return float64(n*SectorSize) / (BusMBPerSec * 1e6) * 1000.0
}

// BlockMediaMs is the media transfer time of one 8K block (~3.33 ms).
var BlockMediaMs = MediaTransferMs(BlockSectors)

// BlockBusMs is the bus transfer time of one 8K block (~0.82 ms).
var BlockBusMs = BusTransferMs(BlockSectors)

// Service implements Model.
func (m *HP97560) Service(lbn int64, now float64) float64 {
	start := lbn * BlockSectors
	end := start + BlockSectors
	cyl := int(start / sectorsPerCylinder % Cylinders)

	if !m.initialized {
		m.initialized = true
		// Cold drive: average-ish positioning cost.
		m.headCyl = cyl
		m.lastEnd = end
		seek := SeekMs(Cylinders / 3)
		if m.record {
			m.last = Breakdown{SeekMs: seek, RotationMs: RevolutionMs / 2, TransferMs: BlockMediaMs}
		}
		t := seek + RevolutionMs/2 + BlockMediaMs
		m.idleFrom = now + t
		m.cacheLo, m.cacheHi = start, end
		return t
	}

	// Let the readahead cache grow during the idle period since the last
	// request completed: the drive keeps streaming sectors at media rate.
	if idle := now - m.idleFrom; idle > 0 {
		grown := int64(idle / RevolutionMs * SectorsPerTrack)
		m.cacheHi += grown
		if m.cacheHi > m.cacheLo+int64(cacheSectors) {
			m.cacheHi = m.cacheLo + int64(cacheSectors)
		}
	}

	var t float64
	switch {
	case start >= m.cacheLo && end <= m.cacheHi:
		// Whole extent already in the readahead cache: bus transfer only.
		t = BlockBusMs
		if m.record {
			m.last = Breakdown{TransferMs: BlockBusMs}
		}
	case start == m.lastEnd:
		// Sequential continuation: the head is already positioned; pay
		// media transfer (plus a track/cylinder crossing if we wrapped).
		t = BlockMediaMs
		var seek float64
		if cyl != m.headCyl {
			seek = SeekMs(1)
			t += seek
		}
		if m.record {
			m.last = Breakdown{SeekMs: seek, TransferMs: BlockMediaMs}
		}
	default:
		// Positioning: seek plus rotational latency from the modeled
		// angular position after the seek, plus the media transfer.
		seek := SeekMs(cyl - m.headCyl)
		arrive := now + seek
		// Angle of the platter at arrival, measured in sectors.
		angle := math.Mod(arrive, RevolutionMs) / RevolutionMs * SectorsPerTrack
		target := float64(start % SectorsPerTrack)
		rot := target - angle
		if rot < 0 {
			rot += SectorsPerTrack
		}
		rotMs := rot / SectorsPerTrack * RevolutionMs
		if m.record {
			m.last = Breakdown{SeekMs: seek, RotationMs: rotMs, TransferMs: BlockMediaMs}
		}
		t = seek + rotMs + BlockMediaMs
	}

	m.headCyl = cyl
	m.lastEnd = end
	m.idleFrom = now + t
	if start >= m.cacheLo && start <= m.cacheHi {
		// Extend the cached window over the newly read data.
		if end > m.cacheHi {
			m.cacheHi = end
		}
	} else {
		m.cacheLo, m.cacheHi = start, end
	}
	if m.cacheHi-m.cacheLo > int64(cacheSectors) {
		m.cacheLo = m.cacheHi - int64(cacheSectors)
	}
	return t
}

// Simple is a simplified fixed-latency drive model standing in for the
// paper's second (CMU RaidSim / IBM 0661 Lightning) simulator in the
// Table 2 cross-validation: sequential continuations cost the media
// transfer time; everything else costs a fixed positioning delay plus the
// transfer.
type Simple struct {
	// PositionMs is the fixed positioning (seek+rotation) cost of a
	// non-sequential access.
	PositionMs float64
	lastEnd    int64
	started    bool
	record     bool
	last       Breakdown
}

// LastBreakdown implements BreakdownModel; the fixed positioning cost is
// reported as seek.
func (m *Simple) LastBreakdown() Breakdown { return m.last }

// RecordBreakdown implements BreakdownModel.
func (m *Simple) RecordBreakdown(on bool) { m.record = on }

// NewSimple returns a Simple model with a typical 11 ms positioning cost.
func NewSimple() *Simple { return &Simple{PositionMs: 11.0} }

// Reset implements Model.
func (m *Simple) Reset() { *m = Simple{PositionMs: m.PositionMs, record: m.record} }

// Service implements Model.
func (m *Simple) Service(lbn int64, now float64) float64 {
	start := lbn * BlockSectors
	t := BlockMediaMs
	var pos float64
	if !m.started || start != m.lastEnd {
		t += m.PositionMs
		pos = m.PositionMs
	}
	if m.record {
		m.last = Breakdown{SeekMs: pos, TransferMs: BlockMediaMs}
	}
	m.started = true
	m.lastEnd = start + BlockSectors
	return t
}

// Validate sanity-checks the compile-time geometry so a bad edit fails
// fast in tests rather than silently skewing every experiment.
func Validate() error {
	if BlockSectors*SectorSize != 8192 {
		return fmt.Errorf("disk: block is %d bytes, want 8192", BlockSectors*SectorSize)
	}
	if RevolutionMs < 14.9 || RevolutionMs > 15.1 {
		return fmt.Errorf("disk: revolution %.3f ms out of range for 4002 rpm", RevolutionMs)
	}
	return nil
}
