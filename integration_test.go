package ppcsim_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ppcsim"
	"ppcsim/internal/trace/tracetest"
)

// truncated returns a scaled-down bundled trace for fast integration
// runs, sharing tracetest's per-process generation cache.
func truncated(t *testing.T, name string, n int) *ppcsim.Trace {
	t.Helper()
	return tracetest.Truncated(t, name, n)
}

// TestAllAlgorithmsAllTraces runs every algorithm on a slice of every
// bundled trace across array sizes and both schedulers, checking the
// global invariants: every reference served, non-negative stall, elapsed
// at least compute, utilization within bounds.
func TestAllAlgorithmsAllTraces(t *testing.T) {
	for _, name := range ppcsim.TraceNames {
		tr := truncated(t, name, 4000)
		for _, alg := range ppcsim.Algorithms {
			for _, d := range []int{1, 2, 4, 8} {
				for _, sched := range []ppcsim.Discipline{ppcsim.CSCAN, ppcsim.FCFS} {
					r, err := ppcsim.Run(ppcsim.Options{
						Trace: tr, Algorithm: alg, Disks: d, Scheduler: sched,
					})
					if err != nil {
						t.Fatalf("%s/%s/d=%d/%v: %v", name, alg, d, sched, err)
					}
					if r.CacheHits+r.CacheMisses != int64(len(tr.Refs)) {
						t.Errorf("%s/%s/d=%d/%v: served %d of %d refs",
							name, alg, d, sched, r.CacheHits+r.CacheMisses, len(tr.Refs))
					}
					if r.StallTimeSec < 0 || r.ElapsedSec < r.ComputeSec-1e-9 {
						t.Errorf("%s/%s/d=%d/%v: bad decomposition %+v", name, alg, d, sched, r)
					}
					if r.AvgUtilization < 0 || r.AvgUtilization > 1+1e-9 {
						t.Errorf("%s/%s/d=%d/%v: utilization %g", name, alg, d, sched, r.AvgUtilization)
					}
					if r.Fetches < int64(minDistinct(tr)) {
						t.Errorf("%s/%s/d=%d/%v: %d fetches below distinct-block floor %d",
							name, alg, d, sched, r.Fetches, minDistinct(tr))
					}
				}
			}
		}
	}
}

func minDistinct(tr *ppcsim.Trace) int {
	return tr.Stats().DistinctBlocks
}

// TestRunDeterministic: identical options give identical results for
// every algorithm.
func TestRunDeterministic(t *testing.T) {
	tr := truncated(t, "glimpse", 6000)
	for _, alg := range ppcsim.Algorithms {
		a, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: alg, Disks: 3})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: alg, Disks: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: nondeterministic:\n%v\n%v", alg, a, b)
		}
	}
}

// TestOptionsValidation covers the public API's error paths.
func TestOptionsValidation(t *testing.T) {
	tr := truncated(t, "ld", 100)
	if _, err := ppcsim.Run(ppcsim.Options{Algorithm: ppcsim.Demand}); err == nil {
		t.Error("nil trace should fail")
	}
	if _, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: "bogus"}); err == nil {
		t.Error("unknown algorithm should fail")
	}
	if _, err := ppcsim.NewTrace("bogus"); err == nil {
		t.Error("unknown trace should fail")
	}
	if _, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Demand, Disks: -1}); err == nil {
		t.Error("negative disks should fail")
	}
}

// TestDefaultDisksIsOne: zero Disks means a single-disk array.
func TestDefaultDisksIsOne(t *testing.T) {
	tr := truncated(t, "ld", 500)
	a, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Demand})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Demand, Disks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("zero disks should default to one")
	}
}

// TestSimpleDiskModel: the simplified model runs all algorithms and gives
// broadly similar elapsed times to the full model (the Table 2
// cross-validation property).
func TestSimpleDiskModel(t *testing.T) {
	tr := truncated(t, "xds", 4000)
	for _, alg := range []ppcsim.Algorithm{ppcsim.FixedHorizon, ppcsim.Aggressive} {
		full, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: alg, Disks: 2})
		if err != nil {
			t.Fatal(err)
		}
		simple, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: alg, Disks: 2, SimpleDiskModel: true})
		if err != nil {
			t.Fatal(err)
		}
		ratio := simple.ElapsedSec / full.ElapsedSec
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: simple/full elapsed ratio %g out of [0.5, 2]", alg, ratio)
		}
	}
}

// TestCustomDiskGeometry: a user-specified drive with the HP 97560's
// parameters reproduces the default model exactly; a faster spindle
// gives a faster run; a bad geometry is rejected.
func TestCustomDiskGeometry(t *testing.T) {
	tr := truncated(t, "postgres-select", 2500)
	g := ppcsim.HP97560Geometry()
	def, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: 2})
	if err != nil {
		t.Fatal(err)
	}
	same, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: 2, DiskGeometry: &g})
	if err != nil {
		t.Fatal(err)
	}
	if def.ElapsedSec != same.ElapsedSec || def.Fetches != same.Fetches {
		t.Errorf("HP geometry differs from default: %v vs %v", def, same)
	}
	fast := g
	fast.RPM *= 2
	faster, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: 2, DiskGeometry: &fast})
	if err != nil {
		t.Fatal(err)
	}
	if faster.ElapsedSec >= def.ElapsedSec {
		t.Errorf("double-RPM drive (%.3fs) should beat the stock drive (%.3fs)", faster.ElapsedSec, def.ElapsedSec)
	}
	bad := g
	bad.RPM = 0
	if _, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: 2, DiskGeometry: &bad}); err == nil {
		t.Error("invalid geometry should be rejected")
	}
}

// TestRunBestReverseAggressive picks the best grid point.
func TestRunBestReverseAggressive(t *testing.T) {
	tr := truncated(t, "cscope1", 3000)
	best, choice, err := ppcsim.RunBestReverseAggressive(
		ppcsim.Options{Trace: tr, Disks: 2},
		ppcsim.ReverseAggressiveGrid{Estimates: []float64{4, 32}, Batches: []int{8, 40}})
	if err != nil {
		t.Fatal(err)
	}
	var seenChoice bool
	for _, f := range []float64{4, 32} {
		for _, b := range []int{8, 40} {
			r, err := ppcsim.Run(ppcsim.Options{
				Trace: tr, Algorithm: ppcsim.ReverseAggressive, Disks: 2,
				FetchEstimate: f, BatchSize: b,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.ElapsedSec < best.ElapsedSec-1e-9 {
				t.Errorf("grid point F=%g b=%d (%g) beats reported best (%g)", f, b, r.ElapsedSec, best.ElapsedSec)
			}
			if choice.FetchEstimate == f && choice.BatchSize == b {
				seenChoice = true
				if r.ElapsedSec != best.ElapsedSec {
					t.Errorf("winning choice F=%g b=%d reruns to %g, reported best %g", f, b, r.ElapsedSec, best.ElapsedSec)
				}
			}
		}
	}
	if !seenChoice {
		t.Errorf("reported choice %+v is not a grid point", choice)
	}
}

// TestPlacementSeedChangesLayoutNotCorrectness: different placement seeds
// shuffle file positions but every run still serves the whole trace.
func TestPlacementSeedChangesLayoutNotCorrectness(t *testing.T) {
	tr := truncated(t, "cscope2", 4000)
	var elapsed []float64
	for _, seed := range []int64{0, 1, 2} {
		r, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: 3, PlacementSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if r.CacheHits+r.CacheMisses != int64(len(tr.Refs)) {
			t.Fatal("not all refs served")
		}
		elapsed = append(elapsed, r.ElapsedSec)
	}
	if elapsed[0] == elapsed[1] && elapsed[1] == elapsed[2] {
		t.Log("placement seeds gave identical elapsed times (possible but unlikely)")
	}
}

// TestRandomTracesAllAlgorithms is the main property-based integration
// test: arbitrary random traces must run to completion under every
// algorithm with all invariants intact.
func TestRandomTracesAllAlgorithms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := tracetest.Random(rng, tracetest.RandomConfig{
			MaxBlocks: 64, MaxRefs: 529, RandomPlacement: true,
		})
		n := len(tr.Refs)
		disks := 1 + rng.Intn(6)
		for _, alg := range ppcsim.Algorithms {
			r, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: alg, Disks: disks})
			if err != nil {
				t.Logf("seed %d %s: %v", seed, alg, err)
				return false
			}
			if r.CacheHits+r.CacheMisses != int64(n) {
				t.Logf("seed %d %s: served %d of %d", seed, alg, r.CacheHits+r.CacheMisses, n)
				return false
			}
			if r.ElapsedSec < r.ComputeSec-1e-9 || math.IsNaN(r.ElapsedSec) {
				t.Logf("seed %d %s: bad elapsed %g", seed, alg, r.ElapsedSec)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
