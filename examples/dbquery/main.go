// dbquery sizes a disk array for an indexed database selection — the
// paper's postgres-select workload (one of the read-intensive,
// predictable-access applications its introduction motivates).
//
// The program sweeps array sizes, shows how each algorithm converts added
// spindles into reduced I/O stall, and reports the smallest array at
// which the query becomes compute-bound under each policy.
//
// Run with:
//
//	go run ./examples/dbquery
package main

import (
	"fmt"
	"log"

	"ppcsim"
)

func main() {
	tr, err := ppcsim.NewTrace("postgres-select")
	if err != nil {
		log.Fatal(err)
	}
	st := tr.Stats()
	fmt.Printf("postgres-select: indexed selection of 2%% of a 32 MB relation\n")
	fmt.Printf("%d reads, %d distinct blocks, %.1f s of compute\n\n", st.Reads, st.DistinctBlocks, st.ComputeSec)

	disks := []int{1, 2, 3, 4, 5, 6, 8, 10, 16}
	algs := []ppcsim.Algorithm{ppcsim.Demand, ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.Forestall}

	fmt.Printf("%-6s", "disks")
	for _, a := range algs {
		fmt.Printf(" %16s", a)
	}
	fmt.Println("   (elapsed seconds)")

	computeBoundAt := map[ppcsim.Algorithm]int{}
	for _, d := range disks {
		fmt.Printf("%-6d", d)
		for _, a := range algs {
			r, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: a, Disks: d})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %16.3f", r.ElapsedSec)
			// Compute-bound once stall is under 5% of elapsed.
			if computeBoundAt[a] == 0 && r.StallTimeSec < 0.05*r.ElapsedSec {
				computeBoundAt[a] = d
			}
		}
		fmt.Println()
	}

	fmt.Println()
	for _, a := range algs {
		if d := computeBoundAt[a]; d > 0 {
			fmt.Printf("%-16s becomes compute-bound at %d disk(s)\n", a, d)
		} else {
			fmt.Printf("%-16s never becomes compute-bound in this sweep\n", a)
		}
	}
	fmt.Println("\nPrefetching reaches the compute-bound floor with a fraction of the")
	fmt.Println("spindles optimal demand fetching needs (paper Figure 2).")
}
