// Quickstart: compare all five integrated prefetching-and-caching
// algorithms on the paper's synthetic trace across array sizes, printing
// the elapsed-time decomposition the paper's figures use.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ppcsim"
)

func main() {
	tr, err := ppcsim.NewTrace("synth")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace %s: %d reads, %d distinct blocks, %.1f s of compute\n\n",
		tr.Name, len(tr.Refs), tr.Stats().DistinctBlocks, tr.Stats().ComputeSec)

	fmt.Printf("%-6s %-20s %10s %10s %10s %10s %8s\n",
		"disks", "algorithm", "elapsed(s)", "stall(s)", "driver(s)", "fetches", "util")
	for _, disks := range []int{1, 2, 3, 4} {
		for _, alg := range ppcsim.Algorithms {
			var res ppcsim.Result
			if alg == ppcsim.ReverseAggressive {
				// The paper picks reverse aggressive's fetch-time estimate
				// and batch size to minimize elapsed time; use a small grid.
				res, _, err = ppcsim.RunBestReverseAggressive(
					ppcsim.Options{Trace: tr, Disks: disks},
					ppcsim.ReverseAggressiveGrid{Estimates: []float64{2, 4, 16}, Batches: []int{16, 80}})
			} else {
				res, err = ppcsim.Run(ppcsim.Options{
					Trace:     tr,
					Algorithm: alg,
					Disks:     disks,
				})
			}
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6d %-20s %10.3f %10.3f %10.3f %10d %8.2f\n",
				disks, alg, res.ElapsedSec, res.StallTimeSec, res.DriverTimeSec,
				res.Fetches, res.AvgUtilization)
		}
		fmt.Println()
	}
	fmt.Println("Expected shape (paper section 4.2): aggressive wins at 1 disk (I/O")
	fmt.Println("bound); fixed horizon and forestall win at 3-4 disks, where")
	fmt.Println("aggressive wastes fetches and pays driver overhead.")
}
