// tuning explores the algorithms' tuning knobs on a text-search workload
// (the paper's cscope2 trace): aggressive's batch size, fixed horizon's
// prefetch horizon, and forestall's fetch-time estimate — the parameter
// studies of the paper's section 4.4 and appendices E, G and H.
//
// Run with:
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"ppcsim"
)

func run(opts ppcsim.Options) ppcsim.Result {
	r, err := ppcsim.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	tr, err := ppcsim.NewTrace("cscope2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cscope2: four text-string searches over an 18 MB source tree")

	fmt.Println("\n1. Aggressive's batch size (paper Figure 6): bigger batches give")
	fmt.Println("   the disk scheduler latitude, until out-of-order fetching and")
	fmt.Println("   early replacement win out.")
	fmt.Printf("%-8s", "batch")
	diskSet := []int{1, 2, 4}
	for _, d := range diskSet {
		fmt.Printf(" %8dd", d)
	}
	fmt.Println("   (elapsed seconds)")
	for _, b := range []int{4, 16, 80, 320, 1280} {
		fmt.Printf("%-8d", b)
		for _, d := range diskSet {
			r := run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: d, BatchSize: b})
			fmt.Printf(" %9.2f", r.ElapsedSec)
		}
		fmt.Println()
	}

	fmt.Println("\n2. Fixed horizon's H (paper Figure 7): an I/O-bound trace keeps")
	fmt.Println("   improving with deeper horizons before declining.")
	fmt.Printf("%-8s", "H")
	for _, d := range diskSet {
		fmt.Printf(" %8dd", d)
	}
	fmt.Println("   (elapsed seconds)")
	for _, h := range []int{16, 62, 256, 1024, 2048} {
		fmt.Printf("%-8d", h)
		for _, d := range diskSet {
			r := run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.FixedHorizon, Disks: d, Horizon: h})
			fmt.Printf(" %9.2f", r.ElapsedSec)
		}
		fmt.Println()
	}

	fmt.Println("\n3. Forestall's fetch-time estimate (paper appendix H): dynamic")
	fmt.Println("   estimation vs fixed overrides.")
	fmt.Printf("%-8s", "F'")
	for _, d := range diskSet {
		fmt.Printf(" %8dd", d)
	}
	fmt.Println("   (elapsed seconds)")
	fmt.Printf("%-8s", "dyn")
	for _, d := range diskSet {
		r := run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: d})
		fmt.Printf(" %9.2f", r.ElapsedSec)
	}
	fmt.Println()
	for _, f := range []float64{2, 8, 30, 60} {
		fmt.Printf("%-8g", f)
		for _, d := range diskSet {
			r := run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: d, ForestallFixedF: f})
			fmt.Printf(" %9.2f", r.ElapsedSec)
		}
		fmt.Println()
	}
	fmt.Println("\nThe paper's conclusion holds: choosing roughly the right parameter")
	fmt.Println("between workloads matters more than fine-tuning within one.")
}
