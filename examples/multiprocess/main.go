// multiprocess runs the experiment the paper's conclusion sketches but
// never performs: a hinted, prefetching process sharing the cache and
// disk array with an innocent non-hinting process. The paper predicts
// ("Since fixed horizon places the least load on the disks and the
// cache, it is likely to be least affected by unhinted accesses and to
// have the smallest impact on other executing processes") — this program
// measures it.
//
// Run with:
//
//	go run ./examples/multiprocess
package main

import (
	"fmt"
	"log"

	"ppcsim"
)

func main() {
	// The hinted "hog": a large sequential scan-loop (synth-like).
	mkHog := func() *ppcsim.Trace {
		b := ppcsim.NewTraceBuilder("hog").Seed(1)
		f := b.AddFile(1500)
		b.ComputeExp(1.0).Loop(f, 6)
		tr, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}
	// The victim: an interactive, non-hinting process with a modest
	// working set.
	mkVictim := func() *ppcsim.Trace {
		b := ppcsim.NewTraceBuilder("victim").Seed(2)
		f := b.AddFile(800)
		b.ComputeExp(3.0).Zipf(f, 3000, 1.4)
		tr, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}

	const disks = 2
	const cache = 1024

	solo, err := ppcsim.RunMulti(ppcsim.MultiConfig{
		Processes:   []ppcsim.ProcessSpec{{Trace: mkVictim()}},
		Disks:       disks,
		CacheBlocks: cache,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim alone:                 %7.3f s elapsed, %6.3f s stall, %5d fetches\n",
		solo.Processes[0].ElapsedSec, solo.Processes[0].StallTimeSec, solo.Processes[0].Fetches)

	for _, alg := range []ppcsim.Algorithm{"fixed-horizon", "aggressive"} {
		res, err := ppcsim.RunMulti(ppcsim.MultiConfig{
			Processes: []ppcsim.ProcessSpec{
				{Trace: mkHog(), Algorithm: ppcsim.MultiFixedHorizon, Hinted: true},
				{Trace: mkVictim()},
			},
			Disks:       disks,
			CacheBlocks: cache,
		})
		if alg == "aggressive" {
			res, err = ppcsim.RunMulti(ppcsim.MultiConfig{
				Processes: []ppcsim.ProcessSpec{
					{Trace: mkHog(), Algorithm: ppcsim.MultiAggressive, Hinted: true},
					{Trace: mkVictim()},
				},
				Disks:       disks,
				CacheBlocks: cache,
			})
		}
		if err != nil {
			log.Fatal(err)
		}
		hog, victim := res.Processes[0], res.Processes[1]
		slowdown := victim.ElapsedSec / solo.Processes[0].ElapsedSec
		fmt.Printf("victim next to %-13s %7.3f s elapsed (%.2fx slowdown), %6.3f s stall, %5d fetches;  hog: %7.3f s, %d fetches\n",
			alg+":", victim.ElapsedSec, slowdown, victim.StallTimeSec, victim.Fetches,
			hog.ElapsedSec, hog.Fetches)
	}
	fmt.Println("\nThe paper's prediction: the aggressive neighbor steals more cache")
	fmt.Println("buffers and disk-arm time, so the victim suffers more than it does")
	fmt.Println("next to the conservative fixed-horizon process.")
}
