// visualization models an out-of-core 3-D visualization tool — the
// paper's xds workload (XDataSlice, extracting planar slices at random
// orientations from a 64 MB volume) — and explores how hint-based
// prefetching and the CSCAN disk scheduler interact for this strided,
// non-sequential access pattern.
//
// Run with:
//
//	go run ./examples/visualization
package main

import (
	"fmt"
	"log"

	"ppcsim"
)

func run(opts ppcsim.Options) ppcsim.Result {
	r, err := ppcsim.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	tr, err := ppcsim.NewTrace("xds")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("xds: 25 planar slices at random orientations from a 64 MB volume")
	fmt.Println()

	// Part 1: scheduler comparison. Strided slice reads give CSCAN room
	// to reorder; FCFS serves them in hint order.
	fmt.Println("CSCAN vs FCFS (forestall):")
	fmt.Printf("%-6s %12s %12s %9s\n", "disks", "CSCAN (s)", "FCFS (s)", "gain")
	for _, d := range []int{1, 2, 3, 4} {
		cs := run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: d})
		fc := run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: d, Scheduler: ppcsim.FCFS})
		fmt.Printf("%-6d %12.3f %12.3f %8.1f%%\n",
			d, cs.ElapsedSec, fc.ElapsedSec, (fc.ElapsedSec-cs.ElapsedSec)/fc.ElapsedSec*100)
	}

	// Part 2: what a faster renderer changes. Halving the compute time
	// (the paper's double-speed-CPU appendix) makes the workload more
	// I/O-bound, favoring deeper prefetching for longer.
	fmt.Println("\nDouble-speed CPU (fixed horizon H=124 per the paper) vs aggressive:")
	fast := tr.ScaleCompute(0.5)
	fmt.Printf("%-6s %16s %16s\n", "disks", "fixed-horizon(s)", "aggressive(s)")
	for _, d := range []int{1, 2, 4, 6} {
		fh := run(ppcsim.Options{Trace: fast, Algorithm: ppcsim.FixedHorizon, Disks: d, Horizon: 124})
		ag := run(ppcsim.Options{Trace: fast, Algorithm: ppcsim.Aggressive, Disks: d})
		marker := ""
		if ag.ElapsedSec < fh.ElapsedSec {
			marker = "  <- aggressive ahead"
		}
		fmt.Printf("%-6d %16.3f %16.3f%s\n", d, fh.ElapsedSec, ag.ElapsedSec, marker)
	}
	fmt.Println("\nFaster processors are more dependent on I/O performance, so the")
	fmt.Println("point where conservative prefetching overtakes aggressive shifts to")
	fmt.Println("larger arrays (paper section 4.4).")
}
