// hints builds a custom workload with the TraceBuilder public API and
// explores the extension the paper's conclusion calls for: what happens
// as application hints become incomplete or inaccurate, and how much of
// the benefit survives versus a conventional hint-less LRU cache.
//
// Run with:
//
//	go run ./examples/hints
package main

import (
	"fmt"
	"log"

	"ppcsim"
)

// buildWorkload models a document store: a hot index scanned per query,
// Zipf-skewed document fetches, and a periodic log write.
func buildWorkload() *ppcsim.Trace {
	b := ppcsim.NewTraceBuilder("docstore").Seed(7)
	index := b.AddFile(128)
	docs := b.AddFile(6000)
	logf := b.AddFile(1024)
	b.ComputeExp(1.5)
	for q := 0; q < 400; q++ {
		b.Sequential(index, 0, 16)    // consult the index
		b.Zipf(docs, 12, 1.3)         // fetch a dozen documents, skewed
		b.WriteSequential(logf, q, 1) // append to the query log
	}
	b.CacheBlocks(1024)
	tr, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func main() {
	tr := buildWorkload()
	st := tr.Stats()
	fmt.Printf("workload %s: %d reads, %d writes, %d distinct blocks, %.1f s compute\n\n",
		tr.Name, st.Reads, st.Writes, st.DistinctBlocks, st.ComputeSec)

	const disks = 2
	lru, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.DemandLRU, Disks: disks})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (hint-less LRU cache): %.3f s elapsed, %.3f s stall\n\n", lru.ElapsedSec, lru.StallTimeSec)

	fmt.Printf("%-28s %12s %12s %10s\n", "hints", "elapsed(s)", "stall(s)", "fetches")
	specs := []struct {
		label string
		h     *ppcsim.HintSpec
	}{
		{"100% disclosed, accurate", nil},
		{"75% disclosed", &ppcsim.HintSpec{Fraction: 0.75, Accuracy: 1, Seed: 1}},
		{"50% disclosed", &ppcsim.HintSpec{Fraction: 0.50, Accuracy: 1, Seed: 1}},
		{"25% disclosed", &ppcsim.HintSpec{Fraction: 0.25, Accuracy: 1, Seed: 1}},
		{"100% disclosed, 80% right", &ppcsim.HintSpec{Fraction: 1, Accuracy: 0.8, Seed: 1}},
		{"none", &ppcsim.HintSpec{Fraction: 0, Accuracy: 1, Seed: 1}},
	}
	for _, s := range specs {
		r, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: disks, Hints: s.h})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %12.3f %12.3f %10d\n", s.label, r.ElapsedSec, r.StallTimeSec, r.Fetches)
	}
	fmt.Println("\nEven partial hints beat the hint-less cache. Inaccurate hints are")
	fmt.Println("another story: at 80% accuracy the prefetchers chase thousands of")
	fmt.Println("documents nobody asked for and evict the ones they need — actively")
	fmt.Println("worse than disclosing nothing. Hints must be trustworthy.")
}
