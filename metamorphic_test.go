package ppcsim_test

import (
	"math/rand"
	"testing"

	"ppcsim"
	"ppcsim/internal/trace/tracetest"
)

// Metamorphic invariants: relations between runs that must hold for any
// trace, checked on small synthetic workloads across every prefetching
// algorithm and array size. Unlike the appendix-table claims these need
// no golden numbers — they compare the simulator against itself, so they
// survive disk-model changes that shift absolute results.

// metaAlgs are the paper's four prefetching/caching algorithms.
var metaAlgs = []ppcsim.Algorithm{
	ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.ReverseAggressive, ppcsim.Forestall,
}

var metaDisks = []int{1, 2, 4}

// metaTraces is the synthetic workload mix: cyclic reuse, a cache-busting
// stride, and a seeded random trace.
func metaTraces() []*ppcsim.Trace {
	return []*ppcsim.Trace{
		tracetest.Loop("loop", 32, 400, 2),
		tracetest.Strided("stride", 48, 400, 7, 1),
		tracetest.Random(rand.New(rand.NewSource(11)), tracetest.RandomConfig{
			MaxBlocks: 48, MaxRefs: 400,
		}),
	}
}

func metaRun(t *testing.T, tr *ppcsim.Trace, alg ppcsim.Algorithm, disks, cache int) ppcsim.Result {
	t.Helper()
	r, err := ppcsim.Run(ppcsim.Options{
		Trace: tr, Algorithm: alg, Disks: disks, CacheBlocks: cache,
	})
	if err != nil {
		t.Fatalf("%s/%s/d=%d/c=%d: %v", tr.Name, alg, disks, cache, err)
	}
	return r
}

// metaTolerance absorbs scheduling noise in the comparisons: the
// invariants are structural, but batching boundaries and CSCAN sweep
// positions can nudge elapsed time by a fraction of a percent.
const metaTolerance = 1.02

// TestMetamorphicPrefetchBeatsDemand: every prefetching algorithm must
// finish no later than demand fetching with the same optimal
// replacement — prefetching only overlaps fetches with compute it would
// otherwise stall through.
func TestMetamorphicPrefetchBeatsDemand(t *testing.T) {
	for _, tr := range metaTraces() {
		for _, d := range metaDisks {
			demand := metaRun(t, tr, ppcsim.Demand, d, 0)
			for _, alg := range metaAlgs {
				r := metaRun(t, tr, alg, d, 0)
				if r.ElapsedSec > demand.ElapsedSec*metaTolerance {
					t.Errorf("%s/d=%d: %s elapsed %.4fs exceeds demand %.4fs",
						tr.Name, d, alg, r.ElapsedSec, demand.ElapsedSec)
				}
			}
		}
	}
}

// TestMetamorphicCacheMonotone: growing the cache never slows a run.
// The invariant has three true forms with different strengths. Demand
// fetching with optimal replacement is pairwise monotone on any trace —
// extra blocks only remove fetches. Prefetchers are pairwise monotone on
// workloads with reuse, but only within a queueing tolerance: a bigger
// cache admits more in-flight prefetches, and CSCAN sweep reordering can
// delay the demand stream (the effect batching exists to bound), which
// on a pure-miss stride stream breaks pairwise monotonicity outright.
// Even there, though, the fully-resident cache beats every smaller size.
func TestMetamorphicCacheMonotone(t *testing.T) {
	sizes := []int{4, 8, 16, 32, 64}

	t.Run("demand-pairwise", func(t *testing.T) {
		for _, tr := range metaTraces() {
			for _, d := range metaDisks {
				prev, prevSize := -1.0, 0
				for _, c := range sizes {
					r := metaRun(t, tr, ppcsim.Demand, d, c)
					if prev >= 0 && r.ElapsedSec > prev*metaTolerance {
						t.Errorf("%s/d=%d: cache %d→%d raised elapsed %.4fs→%.4fs",
							tr.Name, d, prevSize, c, prev, r.ElapsedSec)
					}
					prev, prevSize = r.ElapsedSec, c
				}
			}
		}
	})

	t.Run("prefetch-pairwise-on-reuse", func(t *testing.T) {
		// 5%: forestall's prefetch-queueing wobble on the loop trace
		// reaches ~3% between small cache sizes.
		const queueTolerance = 1.05
		reuse := []*ppcsim.Trace{
			tracetest.Loop("loop", 32, 400, 2),
			tracetest.Random(rand.New(rand.NewSource(11)), tracetest.RandomConfig{
				MaxBlocks: 48, MaxRefs: 400,
			}),
		}
		for _, tr := range reuse {
			for _, alg := range metaAlgs {
				for _, d := range metaDisks {
					prev, prevSize := -1.0, 0
					for _, c := range sizes {
						r := metaRun(t, tr, alg, d, c)
						if prev >= 0 && r.ElapsedSec > prev*queueTolerance {
							t.Errorf("%s/%s/d=%d: cache %d→%d raised elapsed %.4fs→%.4fs",
								tr.Name, alg, d, prevSize, c, prev, r.ElapsedSec)
						}
						prev, prevSize = r.ElapsedSec, c
					}
				}
			}
		}
	})

	t.Run("full-residency-global-min", func(t *testing.T) {
		full := sizes[len(sizes)-1] // covers every trace's block space
		for _, tr := range metaTraces() {
			for _, alg := range metaAlgs {
				for _, d := range metaDisks {
					best := metaRun(t, tr, alg, d, full)
					for _, c := range sizes[:len(sizes)-1] {
						r := metaRun(t, tr, alg, d, c)
						if best.ElapsedSec > r.ElapsedSec*metaTolerance {
							t.Errorf("%s/%s/d=%d: full cache %.4fs loses to cache %d at %.4fs",
								tr.Name, alg, d, best.ElapsedSec, c, r.ElapsedSec)
						}
					}
				}
			}
		}
	})
}

// TestMetamorphicDuplicateSubadditive: running the trace twice
// back-to-back costs at most twice one run — the second pass starts with
// a warm cache, so it can only be cheaper.
func TestMetamorphicDuplicateSubadditive(t *testing.T) {
	for _, tr := range metaTraces() {
		doubled := tracetest.Repeat(tr, 2)
		for _, alg := range metaAlgs {
			for _, d := range metaDisks {
				one := metaRun(t, tr, alg, d, 0)
				two := metaRun(t, doubled, alg, d, 0)
				if two.ElapsedSec > 2*one.ElapsedSec*metaTolerance {
					t.Errorf("%s/%s/d=%d: doubled trace elapsed %.4fs exceeds 2x single %.4fs",
						tr.Name, alg, d, two.ElapsedSec, one.ElapsedSec)
				}
				if served := two.CacheHits + two.CacheMisses; served != int64(2*len(tr.Refs)) {
					t.Errorf("%s/%s/d=%d: doubled trace served %d of %d refs",
						tr.Name, alg, d, served, 2*len(tr.Refs))
				}
			}
		}
	}
}

// TestMetamorphicWindowMonotone: on reuse workloads a larger lookahead
// window never slows a run — more future knowledge can only start
// fetches earlier and evict smarter. Window 0 (unlimited) closes the
// sequence as the largest window.
func TestMetamorphicWindowMonotone(t *testing.T) {
	base := tracetest.Loop("loop", 32, 400, 2)
	reuse := []*ppcsim.Trace{base, tracetest.Repeat(base, 2)}
	windows := []int{1, 4, 16, 64, 0}
	for _, tr := range reuse {
		for _, alg := range []ppcsim.Algorithm{ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.Forestall} {
			for _, d := range metaDisks {
				prev, prevW := -1.0, 0
				for _, w := range windows {
					var h *ppcsim.HintSpec
					if w != 0 {
						h = &ppcsim.HintSpec{Fraction: 1, Accuracy: 1, Window: w}
					}
					r, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: alg, Disks: d, Hints: h})
					if err != nil {
						t.Fatalf("%s/%s/d=%d/W=%d: %v", tr.Name, alg, d, w, err)
					}
					if prev >= 0 && r.ElapsedSec > prev*metaTolerance {
						t.Errorf("%s/%s/d=%d: window %d→%d raised elapsed %.4fs→%.4fs",
							tr.Name, alg, d, prevW, w, prev, r.ElapsedSec)
					}
					prev, prevW = r.ElapsedSec, w
				}
			}
		}
	}
}

// TestMetamorphicReadaheadBeatsDemandSequential: on constant-stride
// workloads the hint-less readahead detector must beat demand fetching
// outright — run detection buys fetch overlap that demand cannot have.
func TestMetamorphicReadaheadBeatsDemandSequential(t *testing.T) {
	seq := []*ppcsim.Trace{
		tracetest.Strided("seq", 64, 400, 1, 1),
		tracetest.Strided("stride", 48, 400, 7, 1),
	}
	for _, tr := range seq {
		for _, d := range metaDisks {
			demand := metaRun(t, tr, ppcsim.Demand, d, 0)
			ra := metaRun(t, tr, ppcsim.Readahead, d, 0)
			if ra.ElapsedSec >= demand.ElapsedSec {
				t.Errorf("%s/d=%d: readahead %.4fs does not beat demand %.4fs",
					tr.Name, d, ra.ElapsedSec, demand.ElapsedSec)
			}
		}
	}
}

// TestMetamorphicMoreDisksNoSlower: adding drives to the array never
// lengthens a run (striping only adds parallel fetch capacity).
func TestMetamorphicMoreDisksNoSlower(t *testing.T) {
	for _, tr := range metaTraces() {
		for _, alg := range metaAlgs {
			prev := -1.0
			prevD := 0
			for _, d := range metaDisks {
				r := metaRun(t, tr, alg, d, 0)
				if prev >= 0 && r.ElapsedSec > prev*metaTolerance {
					t.Errorf("%s/%s: disks %d→%d raised elapsed %.4fs→%.4fs",
						tr.Name, alg, prevD, d, prev, r.ElapsedSec)
				}
				prev, prevD = r.ElapsedSec, d
			}
		}
	}
}
